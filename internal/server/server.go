// Package server exposes the repo's three headline algorithms — dictionary
// matching (§3), LZ1 compression (§4), and optimal static-dictionary
// parsing (§5) — as a long-running HTTP service.
//
// The paper's central economic argument is that dictionary preprocessing is
// paid once and amortized over many texts; the one-shot CLIs in cmd/ pay it
// on every invocation. This package keeps prepared dictionaries resident in
// a bounded LRU registry (registry.go) so the service runs in the
// preprocess-once/match-many regime the paper (and the follow-up serving
// literature, PAPERS.md) actually targets.
//
// Layers:
//
//   - Registry: concurrent-safe preprocessed-dictionary store with LRU
//     eviction; evicted entries stay usable by in-flight requests.
//   - Handlers: JSON endpoints under /v1 (handlers.go); large match texts
//     are sharded across a worker pool with pattern-length halos
//     (match.go), mirroring internal/distrib's workstation sharding.
//   - Robustness/observability: per-request timeouts via context, a
//     semaphore admission limiter that sheds with 429 (limiter.go),
//     graceful shutdown, and GET /metrics reporting request counts,
//     latency histograms, registry occupancy, and the per-algorithm PRAM
//     work/depth ledger (metrics.go).
//
// Only the standard library is used; go.mod stays dependency-free.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/persist"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// Config parameterizes a Server. The zero value is usable; fillDefaults
// supplies production-ish settings.
type Config struct {
	Addr           string        // listen address, e.g. ":8080"
	Procs          int           // PRAM workers per request (0 = GOMAXPROCS)
	MaxDicts       int           // registry capacity (resident dictionaries)
	MaxInflight    int           // concurrent /v1 requests before 429
	RequestTimeout time.Duration // per-request deadline
	ShutdownGrace  time.Duration // drain window on shutdown
	MaxBodyBytes   int64         // request body cap (buffered endpoints only)
	MaxDictBytes   int64         // total pattern bytes per dictionary
	MaxExpandBytes int64         // decompression/expansion output cap
	SegmentBytes   int           // streaming endpoints: fresh text bytes per window
	StreamWindow   int           // streaming decompress: retained history (0 = unbounded)
	CacheDir       string        // snapshot cache directory ("" = persistence off)
	Log            *log.Logger   // nil = log.Default

	// DenseMode selects the compiled-automaton serving path for
	// /v1/dicts/{id}/match: "auto" (default — compile in the background,
	// tree walk until ready), "on" (compile synchronously at registration),
	// "off" (tree walk only). DenseMaxTableBytes caps the transition table a
	// compile may build (0 = dense.DefaultMaxTableBytes); an over-budget
	// dictionary keeps serving from the tree walk.
	DenseMode          string
	DenseMaxTableBytes int64

	// BatchMode selects request coalescing for /v1/dicts/{id}/match and
	// /parse (batch.go): "off" (default — every request dispatches alone),
	// "on" (coalesce every request), "auto" (coalesce only texts below the
	// solo-shard threshold; large texts keep the solo halo-shard path).
	// BatchMaxRequests / BatchMaxBytes / BatchMaxDelay bound one batch
	// (zero = the internal/batch defaults: 32 requests, 1 MiB, 500 µs).
	BatchMode        string
	BatchMaxRequests int
	BatchMaxBytes    int
	BatchMaxDelay    time.Duration

	// Cluster mode (cluster.go): a non-empty ClusterPeers table (which must
	// contain ClusterSelf) turns this node into a cluster member. Dictionary
	// IDs become content addresses placed on ClusterReplicas owners by
	// consistent hashing; non-owner nodes proxy (or, with ClusterRedirect,
	// 307-redirect) dictionary traffic to the owners, hedging a second copy
	// after ClusterHedgeAfter (0 = no hedging, strict failover). Peers are
	// probed via /readyz every ClusterProbeInterval (0 = 1s).
	ClusterSelf          string
	ClusterPeers         []cluster.Peer
	ClusterReplicas      int
	ClusterHedgeAfter    time.Duration
	ClusterProbeInterval time.Duration
	ClusterRedirect      bool

	// Outbound RPC resilience (internal/resilience, DESIGN.md §16). Every
	// zero value disables its policy, so non-cluster servers and existing
	// cluster configurations are unaffected. BreakerFailures consecutive
	// outbound failures open a peer's circuit breaker (BreakerCooldown,
	// default 1s, before a half-open trial); RetryBudgetPct retry tokens
	// are earned per 100 outbound requests for idempotent re-sends;
	// HopFloor is the minimum remaining deadline worth doing work for — a
	// request arriving with less (via the X-Deadline-Ms header) or a
	// proxy hop that would forward less sheds with 503+Retry-After.
	// RPCFaultAdmin enables POST /v1/rpcfaults for installing wire-fault
	// plans at runtime (soak harnesses only); RPCChaosPlan/RPCChaosSeed
	// install one at startup.
	BreakerFailures int
	BreakerCooldown time.Duration
	RetryBudgetPct  int
	HopFloor        time.Duration
	RPCFaultAdmin   bool
	RPCChaosPlan    string
	RPCChaosSeed    uint64

	// QuotaPerTenant bounds concurrent in-flight requests per X-Tenant
	// header value, under the global MaxInflight semaphore (0 = no
	// per-tenant quotas). Requests without the header see only the global
	// limit.
	QuotaPerTenant int
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0)
	}
	if c.MaxDicts <= 0 {
		c.MaxDicts = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxDictBytes <= 0 {
		c.MaxDictBytes = 16 << 20
	}
	if c.MaxExpandBytes <= 0 {
		c.MaxExpandBytes = 256 << 20
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = stream.DefaultSegment
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	if c.DenseMode == "" {
		c.DenseMode = DenseAuto
	}
	if c.BatchMode == "" {
		c.BatchMode = BatchOff
	}
}

// Server is the matching/compression service.
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *Metrics
	limiter *Limiter
	quota   *TenantQuota   // nil when per-tenant quotas are off
	store   *persist.Store // nil when persistence is off
	cluster *clusterState  // nil outside cluster mode
	sweep   persist.SweepReport
	handler http.Handler
}

// New assembles a server from cfg. With a CacheDir the snapshot store is
// opened (created if missing) and every valid snapshot already in it is
// loaded into the registry — a warm start that costs sequential table reads,
// not §3 preprocessing; the PRAM preprocess ledger stays at zero across a
// restart. Corrupt cache entries are quarantined and logged, never fatal.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if !validDenseMode(cfg.DenseMode) {
		return nil, fmt.Errorf("server: invalid DenseMode %q (want %s|%s|%s)", cfg.DenseMode, DenseOff, DenseOn, DenseAuto)
	}
	if !validBatchMode(cfg.BatchMode) {
		return nil, fmt.Errorf("server: invalid BatchMode %q (want %s|%s|%s)", cfg.BatchMode, BatchOff, BatchOn, BatchAuto)
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.MaxDicts),
		metrics: newMetrics(),
		limiter: NewLimiter(cfg.MaxInflight),
		quota:   NewTenantQuota(cfg.QuotaPerTenant),
	}
	s.reg.SetLogf(cfg.Log.Printf)
	if len(cfg.ClusterPeers) > 0 {
		c, err := newClusterState(&cfg, s.metrics)
		if err != nil {
			return nil, err
		}
		s.cluster = c
	}
	if cfg.CacheDir != "" {
		store, err := persist.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		store.SetLogf(cfg.Log.Printf)
		s.store = store
		// Startup sweep: re-validate every snapshot up front so boot reports
		// the store's health in one line (and /readyz can repeat it) instead
		// of discovering rot lazily, one failed Get at a time.
		rep, err := store.Sweep()
		if err != nil {
			cfg.Log.Printf("cache sweep failed: %v", err)
		} else {
			s.sweep = rep
			if rep.Quarantined > 0 || rep.QuarantineFails > 0 || rep.PreQuarantined > 0 {
				cfg.Log.Printf("cache sweep: %d valid, %d quarantined now, %d quarantine failures, %d previously quarantined",
					rep.Valid, rep.Quarantined, rep.QuarantineFails, rep.PreQuarantined)
			}
		}
		s.warmStart()
	}
	s.handler = s.buildMux()
	return s, nil
}

// warmStart loads every resident-capacity-many snapshot from the cache
// directory into the registry.
func (s *Server) warmStart() {
	keys, err := s.store.Keys()
	if err != nil {
		s.cfg.Log.Printf("cache scan failed: %v", err)
		return
	}
	loaded := 0
	for _, k := range keys {
		if loaded >= s.cfg.MaxDicts {
			s.cfg.Log.Printf("cache holds more snapshots than -max-dicts=%d; remaining entries stay on disk", s.cfg.MaxDicts)
			break
		}
		start := time.Now()
		d, aut, size, err := s.store.GetBundle(k)
		if err != nil {
			// GetBundle already quarantined and counted the bad file (it
			// slipped past the sweep, e.g. a concurrent writer); the server
			// still boots.
			s.cfg.Log.Printf("cache entry %s rejected: %v", k, err)
			continue
		}
		s.metrics.recordLoad(time.Since(start))
		// In cluster mode the snapshot key IS the dictionary's cluster-wide
		// ID: register under it so a restarted node serves its owned
		// dictionaries at the same address the ring placed them.
		id := ""
		if s.cluster != nil {
			id = k.String()
		}
		e, _ := s.reg.RegisterPreparedDenseID(id, d, aut, "cache", k.String(), time.Since(start).Nanoseconds())
		s.armDense(e, s.denseUpgradeFunc(e, k))
		form := ""
		if aut != nil {
			form = ", dense"
		}
		s.cfg.Log.Printf("warm start: %s from snapshot %s (%d bytes%s)", e.ID, k, size, form)
		loaded++
	}
}

// Handler returns the fully assembled HTTP handler (exported so tests and
// the bench harness can drive the service without a socket).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the dictionary registry (exported for tests/bench).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server metrics (exported for tests/bench).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Limiter returns the admission limiter (exported for tests/bench).
func (s *Server) Limiter() *Limiter { return s.limiter }

// Store returns the snapshot store, or nil when persistence is off
// (exported for tests/bench).
func (s *Server) Store() *persist.Store { return s.store }

func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	// handle wraps each route with the middleware stack, labelling metrics
	// with the registration pattern (self-describing; no reliance on the
	// router echoing the matched pattern back).
	api := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, true, true, h))
	}
	// Streaming routes keep the limiter (a stream is an in-flight request)
	// but not the per-request deadline: a legitimate stream runs as long as
	// the client keeps sending, and aborts via the connection context.
	str := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, true, false, h))
	}
	obs := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, false, false, h))
	}

	api("POST /v1/dicts", s.handleDictCreate)
	api("GET /v1/dicts", s.handleDictList)
	api("POST /v1/dicts/restore", s.handleDictRestore)
	api("GET /v1/dicts/{id}", s.clusterDict(false, s.handleDictGet))
	api("DELETE /v1/dicts/{id}", s.handleDictDelete)
	api("POST /v1/dicts/{id}/snapshot", s.handleDictSnapshot)
	// The raw bundle download is deliberately NOT cluster-routed: it answers
	// only for what this node actually holds, so replication pulls cannot
	// cascade (a peer that lacks the dictionary says 404, and the puller
	// tries the next candidate).
	api("GET /v1/dicts/{id}/snapshot", s.handleDictSnapshotGet)
	api("POST /v1/dicts/{id}/match", s.clusterDict(false, s.handleMatch))
	api("POST /v1/dicts/{id}/parse", s.clusterDict(false, s.handleParse))
	api("POST /v1/dicts/{id}/expand", s.clusterDict(false, s.handleExpand))
	api("POST /v1/compress", s.handleCompress)
	api("POST /v1/decompress", s.handleDecompress)
	api("POST /v1/dicts/{id}/match/compressed/buffered", s.clusterDict(false, s.handleMatchCompressedBuffered))
	str("POST /v1/dicts/{id}/match/stream", s.clusterDict(true, s.handleMatchStream))
	str("POST /v1/dicts/{id}/match/compressed", s.clusterDict(true, s.handleMatchCompressed))
	str("POST /v1/decompress/stream", s.handleDecompressStream)
	// Observability must answer even under saturation: no limiter.
	obs("GET /metrics", s.handleMetrics)
	obs("GET /healthz", s.handleHealthz)
	obs("GET /readyz", s.handleReadyz)
	obs("GET /v1/cluster", s.handleCluster)
	if s.cfg.RPCFaultAdmin {
		// Fault administration shares the observability tier: it must
		// answer mid-partition, which is exactly when the limiter sheds.
		obs("POST /v1/rpcfaults", s.handleRPCFaultsSet)
		obs("GET /v1/rpcfaults", s.handleRPCFaultsGet)
	}
	return mux
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.NewResponseController reach the underlying writer's
// Flusher — the streaming endpoints flush per segment.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// instrument is the per-route middleware stack: panic containment, load
// shedding (limited routes only), an optional per-request deadline (timed;
// streaming routes opt out), and latency/status accounting under the
// route's pattern label.
func (s *Server) instrument(pattern string, limited, timed bool, h http.HandlerFunc) http.Handler {
	rm := s.metrics.route(pattern)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// Deliberate connection abort (e.g. a stream proxy whose
					// upstream died mid-body): the broken transfer IS the
					// error signal. Re-panic so net/http kills the
					// connection instead of ending the response cleanly.
					rm.observe(time.Since(start), sr.status)
					panic(p)
				}
				s.metrics.panics.Add(1)
				s.cfg.Log.Printf("panic in %s: %v", pattern, p)
				if sr.status == http.StatusOK {
					// Nothing written yet; tell the client something.
					writeError(sr, http.StatusInternalServerError, "internal error")
				}
			}
			rm.observe(time.Since(start), sr.status)
		}()
		if limited {
			if !s.limiter.TryAcquire() {
				s.metrics.rejected.Add(1)
				sr.Header().Set("Retry-After", "1")
				writeError(sr, http.StatusTooManyRequests, "server saturated (%d in flight)", s.limiter.Capacity())
				return
			}
			defer s.limiter.Release()
			// Per-tenant quota, under the global semaphore: a tenant that
			// exhausts its slice sheds without touching anyone else's.
			if s.quota != nil {
				if tenant := r.Header.Get("X-Tenant"); tenant != "" {
					if !s.quota.Acquire(tenant) {
						sr.Header().Set("Retry-After", "1")
						writeError(sr, http.StatusTooManyRequests, "tenant %q quota exceeded (%d concurrent)", tenant, s.quota.PerTenant())
						return
					}
					defer s.quota.Release(tenant)
				}
			}
		}
		if timed {
			to := s.cfg.RequestTimeout
			// Deadline propagation: a proxied request carries the sender's
			// remaining budget. Adopt it when tighter than our own timeout,
			// and shed outright when it is below the hop floor — the
			// upstream would discard our answer anyway, so the honest move
			// is an immediate 503 the hedger can act on.
			if ms, ok := deadlineHeaderMs(r); ok {
				rem := time.Duration(ms) * time.Millisecond
				if s.cfg.HopFloor > 0 && rem < s.cfg.HopFloor {
					s.metrics.deadlineSheds.Add(1)
					sr.Header().Set("Retry-After", "1")
					writeError(sr, http.StatusServiceUnavailable, "deadline budget %dms below hop floor %s", ms, s.cfg.HopFloor)
					return
				}
				if rem < to {
					to = rem
				}
			}
			ctx, cancel := context.WithTimeout(r.Context(), to)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sr, r)
	})
}

// deadlineHeaderMs parses the propagated-deadline header; ok is false when
// the header is absent or malformed (malformed budgets are ignored rather
// than shed — an honest client bug should not look like a partition).
func deadlineHeaderMs(r *http.Request) (int64, bool) {
	v := r.Header.Get(resilience.DeadlineHeader)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return ms, true
}

// Run listens on cfg.Addr and serves until ctx is cancelled, then drains
// gracefully for up to cfg.ShutdownGrace. It returns nil on a clean
// shutdown.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.RunListener(ctx, ln)
}

// RunListener is Run on a caller-provided listener (tests use a loopback
// listener on port 0).
func (s *Server) RunListener(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          s.cfg.Log,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	s.cfg.Log.Printf("listening on %s (procs=%d max-dicts=%d max-inflight=%d)",
		ln.Addr(), s.cfg.Procs, s.cfg.MaxDicts, s.cfg.MaxInflight)
	select {
	case err := <-serveErr:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	s.cfg.Log.Printf("shutting down, draining for up to %s", s.cfg.ShutdownGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
