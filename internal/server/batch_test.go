package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// batchTestDicts builds the two dictionaries the equivalence suite serves:
// a planted matching dictionary and a prefix-closed parsing dictionary
// (CompressStatic needs the prefix property plus alphabet coverage). Both
// are registered with a fixed seed so two servers hold identical state.
func batchTestDicts() (matchPats, parsePats [][]byte, text []byte) {
	gen := textgen.New(4242)
	text, matchPats = gen.PlantedDictionary(1<<13, 24, 9, 97, 4)
	seen := map[string]bool{}
	for _, w := range []string{"abba", "bab", "caca", "cb", "ac"} {
		for i := 1; i <= len(w); i++ {
			seen[w[:i]] = true
		}
	}
	for p := range seen {
		parsePats = append(parsePats, []byte(p))
	}
	return matchPats, parsePats, text
}

// registerPatterns registers patterns on a running server and returns the id.
func registerPatterns(t *testing.T, base string, patterns [][]byte) string {
	t.Helper()
	strs := make([]string, len(patterns))
	for i, p := range patterns {
		strs[i] = string(p)
	}
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": strs, "seed": 99})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created.ID
}

// batchEquivTexts is the mixed-size request load: empty, single-byte, odd
// small sizes, and a few big enough to exercise multi-window Step 1 runs,
// cycled to fill the request count.
func batchEquivTexts(text []byte, count int) [][]byte {
	sizes := []int{0, 1, 17, 130, 512, 2048, 60, 333}
	texts := make([][]byte, count)
	for i := range texts {
		n := sizes[i%len(sizes)]
		off := (i * 709) % (len(text) - n)
		texts[i] = text[off : off+n]
	}
	return texts
}

// parseTexts builds parseable texts over the {a,b,c} alphabet, plus one
// unparseable slice (contains 'z') to pin per-request error isolation.
func parseTexts(count int) [][]byte {
	gen := textgen.New(17)
	texts := make([][]byte, count)
	for i := range texts {
		raw := gen.Uniform(1+(i*37)%200, 3)
		for j := range raw {
			raw[j] += 'a'
		}
		texts[i] = raw
	}
	if count >= 3 {
		texts[2] = []byte("abz") // no parse: 'z' is outside the dictionary
	}
	return texts
}

// fireMatch posts one match request and returns status and body.
func fireMatch(t *testing.T, base, id string, text []byte) (int, []byte) {
	t.Helper()
	return postJSON(t, base+"/v1/dicts/"+id+"/match", map[string]any{"text": string(text)})
}

// TestBatchEquivalence is the acceptance suite for the coalescer: the same
// request load fired concurrently at a batch=on server and sequentially at a
// batch=off server must produce byte-identical response bodies, for match
// and parse, across batch sizes {1, 2, 7, 64}, on both the tree and dense
// engines.
func TestBatchEquivalence(t *testing.T) {
	matchPats, parsePats, text := batchTestDicts()
	for _, mode := range []string{DenseOff, DenseOn} {
		for _, k := range []int{1, 2, 7, 64} {
			t.Run(fmt.Sprintf("dense-%s/k%d", mode, k), func(t *testing.T) {
				cfgOn := Config{Addr: "127.0.0.1:0", Procs: 4, DenseMode: mode,
					BatchMode: BatchOn, BatchMaxRequests: k, BatchMaxDelay: 20 * time.Millisecond}
				cfgOff := Config{Addr: "127.0.0.1:0", Procs: 4, DenseMode: mode, BatchMode: BatchOff}
				_, baseOn, downOn := startServer(t, cfgOn)
				defer func() {
					if err := downOn(); err != nil {
						t.Errorf("shutdown: %v", err)
					}
				}()
				_, baseOff, downOff := startServer(t, cfgOff)
				defer func() {
					if err := downOff(); err != nil {
						t.Errorf("shutdown: %v", err)
					}
				}()
				matchOn := registerPatterns(t, baseOn, matchPats)
				matchOff := registerPatterns(t, baseOff, matchPats)
				parseOn := registerPatterns(t, baseOn, parsePats)
				parseOff := registerPatterns(t, baseOff, parsePats)

				mTexts := batchEquivTexts(text, 64)
				pTexts := parseTexts(24)

				type result struct {
					status int
					body   []byte
				}
				gotM := make([]result, len(mTexts))
				gotP := make([]result, len(pTexts))
				var wg sync.WaitGroup
				for i, tx := range mTexts {
					wg.Add(1)
					go func(i int, tx []byte) {
						defer wg.Done()
						st, body := fireMatch(t, baseOn, matchOn, tx)
						gotM[i] = result{st, body}
					}(i, tx)
				}
				for i, tx := range pTexts {
					wg.Add(1)
					go func(i int, tx []byte) {
						defer wg.Done()
						st, body := postJSON(t, baseOn+"/v1/dicts/"+parseOn+"/parse", map[string]any{"text": string(tx)})
						gotP[i] = result{st, body}
					}(i, tx)
				}
				wg.Wait()

				for i, tx := range mTexts {
					st, body := fireMatch(t, baseOff, matchOff, tx)
					if gotM[i].status != st || !bytes.Equal(gotM[i].body, body) {
						t.Fatalf("match request %d (%d bytes): batched (%d) %s != solo (%d) %s",
							i, len(tx), gotM[i].status, gotM[i].body, st, body)
					}
				}
				for i, tx := range pTexts {
					st, body := postJSON(t, baseOff+"/v1/dicts/"+parseOff+"/parse", map[string]any{"text": string(tx)})
					if gotP[i].status != st || !bytes.Equal(gotP[i].body, body) {
						t.Fatalf("parse request %d (%d bytes): batched (%d) %s != solo (%d) %s",
							i, len(tx), gotP[i].status, gotP[i].body, st, body)
					}
				}
			})
		}
	}
}

// TestBatchDeadline503 pins the queued-deadline contract: a request whose
// per-request deadline expires while waiting for its batch to dispatch
// answers 503 with Retry-After — it does not hang until the batch timer.
func TestBatchDeadline503(t *testing.T) {
	matchPats, _, text := batchTestDicts()
	cfg := Config{Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOff,
		BatchMode: BatchOn, BatchMaxRequests: 100, BatchMaxDelay: 10 * time.Second,
		RequestTimeout: 100 * time.Millisecond}
	_, base, shutdown := startServer(t, cfg)
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id := registerPatterns(t, base, matchPats)

	body, _ := json.Marshal(map[string]any{"text": string(text[:64])})
	start := time.Now()
	resp, err := http.Post(base+"/v1/dicts/"+id+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("deadline response took %v; waited for the batch timer", wait)
	}
}

// TestBatchAutoRoutesLargeSolo: in mode auto a text at or above the shard
// threshold bypasses the coalescer and is counted as a solo fallback.
func TestBatchAutoRoutesLargeSolo(t *testing.T) {
	matchPats, _, _ := batchTestDicts()
	cfg := Config{Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOff, BatchMode: BatchAuto}
	srv, base, shutdown := startServer(t, cfg)
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id := registerPatterns(t, base, matchPats)
	big := bytes.Repeat([]byte("abcd"), minShardLen/4) // exactly minShardLen bytes
	if st, body := fireMatch(t, base, id, big); st != http.StatusOK {
		t.Fatalf("large match: %d %s", st, body)
	}
	if got := srv.Metrics().batchSolo.Load(); got != 1 {
		t.Fatalf("batchSolo = %d, want 1", got)
	}
	if got := srv.Metrics().batchBatches.Load(); got != 0 {
		t.Fatalf("batchBatches = %d, want 0 (large text must not batch)", got)
	}
}

// TestBatchMetricsSection is the e2e /metrics check: a concurrent burst of
// small requests through a batch=on server populates the batch section —
// batches formed, occupancy, coalesced bytes, and the delay histogram.
func TestBatchMetricsSection(t *testing.T) {
	matchPats, _, text := batchTestDicts()
	cfg := Config{Addr: "127.0.0.1:0", Procs: 4, DenseMode: DenseOff,
		BatchMode: BatchOn, BatchMaxRequests: 8, BatchMaxDelay: 20 * time.Millisecond}
	_, base, shutdown := startServer(t, cfg)
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id := registerPatterns(t, base, matchPats)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if st, body := fireMatch(t, base, id, text[i*64:i*64+64]); st != http.StatusOK {
				t.Errorf("match %d: %d %s", i, st, body)
			}
		}(i)
	}
	wg.Wait()
	var snap MetricsSnapshot
	if st := getJSON(t, base+"/metrics", &snap); st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	b := snap.Batch
	if b.Mode != BatchOn {
		t.Fatalf("batch mode %q, want %q", b.Mode, BatchOn)
	}
	if b.Requests != 32 {
		t.Fatalf("batch requests %d, want 32", b.Requests)
	}
	if b.Batches < 1 || b.Batches > 32 {
		t.Fatalf("batches %d, want within [1, 32]", b.Batches)
	}
	if b.MeanOccupancy <= 0 {
		t.Fatalf("mean occupancy %f, want > 0", b.MeanOccupancy)
	}
	if b.CoalescedBytes != 32*64 {
		t.Fatalf("coalesced bytes %d, want %d", b.CoalescedBytes, 32*64)
	}
	var delays int64
	for _, c := range b.DelayHistPow2Micros {
		delays += c
	}
	if delays != b.Requests {
		t.Fatalf("delay histogram holds %d samples, want %d", delays, b.Requests)
	}
}

// TestBatchRejectsBadMode: an unknown BatchMode fails construction.
func TestBatchRejectsBadMode(t *testing.T) {
	if _, err := New(Config{BatchMode: "sometimes", Log: quietLogger()}); err == nil {
		t.Fatal("New accepted BatchMode=sometimes")
	}
}

// TestBatchDenseJoinZeroAlloc pins the batched dense hot path's allocation
// contract: with a warm join buffer and a preallocated output array, joining
// 16 small texts and scanning them in one single-shard pass allocates
// nothing. The per-batch output array (which request slices alias) is the
// only allocation the real dispatch adds.
func TestBatchDenseJoinZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc pin is meaningless")
	}
	gen := textgen.New(55)
	patterns := gen.Dictionary(24, 2, 8, 4)
	a, err := dense.CompileDictionary(mustPreprocess(patterns), dense.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sep, ok := a.SeparatorByte()
	if !ok {
		t.Fatal("no separator byte")
	}
	texts := make([][]byte, 16)
	total := 0
	for i := range texts {
		texts[i] = gen.Uniform(512, 4)
		total += len(texts[i]) + 1
	}
	out := make([]core.Match, total)
	// Warm the pool so the measured runs reuse the buffer.
	putJoinBuf(getJoinBuf(total))
	allocs := testing.AllocsPerRun(20, func() {
		buf := getJoinBuf(total)
		joined := buf.bytes[:0]
		for _, tx := range texts {
			joined = append(joined, tx...)
			joined = append(joined, sep)
		}
		denseMatchShardedInto(a, joined, out[:len(joined)], 1)
		buf.bytes = joined
		putJoinBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("batched dense join+scan allocated %.1f times per run, want 0", allocs)
	}
}

// mustPreprocess builds a core dictionary on a sequential machine.
func mustPreprocess(patterns [][]byte) *core.Dictionary {
	m := pram.NewSequential()
	return core.Preprocess(m, patterns, core.Options{Seed: 7})
}

// Fuzzing -------------------------------------------------------------------

var (
	fuzzBatchOnce sync.Once
	fuzzBatchSrv  *Server
	fuzzSoloSrv   *Server
	fuzzBatchID   string
	fuzzBatchErr  error
)

// fuzzServers lazily builds one batch=on and one batch=off server sharing an
// identical registered dictionary, driven in-process through Handler().
func fuzzServers() error {
	fuzzBatchOnce.Do(func() {
		matchPats, _, _ := batchTestDicts()
		mk := func(mode string) (*Server, string, error) {
			srv, err := New(Config{Procs: 4, DenseMode: DenseOff, BatchMode: mode,
				BatchMaxRequests: 4, BatchMaxDelay: 5 * time.Millisecond, Log: quietLogger()})
			if err != nil {
				return nil, "", err
			}
			m := pram.New(2)
			defer m.Close()
			e, _ := srv.Registry().Register(m, matchPats, core.Options{Seed: 99})
			return srv, e.ID, nil
		}
		var idOn, idOff string
		fuzzBatchSrv, idOn, fuzzBatchErr = mk(BatchOn)
		if fuzzBatchErr != nil {
			return
		}
		fuzzSoloSrv, idOff, fuzzBatchErr = mk(BatchOff)
		if fuzzBatchErr != nil {
			return
		}
		if idOn != idOff {
			fuzzBatchErr = fmt.Errorf("dict ids diverged: %s vs %s", idOn, idOff)
			return
		}
		fuzzBatchID = idOn
	})
	return fuzzBatchErr
}

// serveOnce drives one match request through a server's full handler stack.
func serveOnce(srv *Server, id string, text []byte) (int, string) {
	body, _ := json.Marshal(map[string]any{"textB64": base64.StdEncoding.EncodeToString(text)})
	req := httptest.NewRequest(http.MethodPost, "/v1/dicts/"+id+"/match", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// FuzzBatchEquivalence fires up to four fuzz-derived texts concurrently at
// the batch=on server and compares every response byte-for-byte with the
// batch=off server's answer for the same text.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add([]byte("abcd"), []byte(""), []byte("aaaa"), uint8(4))
	f.Add([]byte("cacb"), []byte("x"), []byte("ababab"), uint8(2))
	f.Add(bytes.Repeat([]byte("ab"), 300), []byte("q"), []byte("b"), uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c []byte, n uint8) {
		if err := fuzzServers(); err != nil {
			t.Fatal(err)
		}
		parts := [][]byte{a, b, c, append(a, c...)}
		count := int(n)%4 + 1
		texts := make([][]byte, count)
		for i := range texts {
			tx := parts[i%len(parts)]
			if len(tx) > 2048 {
				tx = tx[:2048]
			}
			texts[i] = tx
		}
		type result struct {
			status int
			body   string
		}
		got := make([]result, count)
		var wg sync.WaitGroup
		for i, tx := range texts {
			wg.Add(1)
			go func(i int, tx []byte) {
				defer wg.Done()
				st, body := serveOnce(fuzzBatchSrv, fuzzBatchID, tx)
				got[i] = result{st, body}
			}(i, tx)
		}
		wg.Wait()
		for i, tx := range texts {
			st, body := serveOnce(fuzzSoloSrv, fuzzBatchID, tx)
			if got[i].status != st || got[i].body != body {
				t.Fatalf("text %d (%d bytes): batched (%d) %s != solo (%d) %s",
					i, len(tx), got[i].status, got[i].body, st, body)
			}
		}
	})
}
