package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/lz"
	"repro/internal/persist"
	"repro/internal/pram"
)

// JSON plumbing ------------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client went away; nothing sensible to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON reads and decodes the request body into dst, rejecting
// oversized bodies, malformed JSON, and trailing garbage. It writes the
// error response itself and reports whether decoding succeeded.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// textPayload is the common "give me bytes" request shape: Text for UTF-8
// friendly payloads, TextB64 for arbitrary binary (it wins when both are
// set).
type textPayload struct {
	Text    string `json:"text"`
	TextB64 string `json:"textB64"`
}

func (p *textPayload) bytes() ([]byte, error) {
	if p.TextB64 != "" {
		return base64.StdEncoding.DecodeString(p.TextB64)
	}
	return []byte(p.Text), nil
}

// writeCtxError maps a context error to 503 (deadline) or 499-style close.
// Both carry Retry-After: the request died of server-side pressure, not a
// client mistake, and a prompt retry usually lands on a quieter instance.
func writeCtxError(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded")
		return
	}
	writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
}

// writeDegraded answers for an entry whose circuit breaker is open: a 503
// with Retry-After, so clients back off while the background fingerprint
// rebuild runs.
func writeDegraded(w http.ResponseWriter, de *DegradedError) {
	w.Header().Set("Retry-After", degradedRetryAfter)
	writeError(w, http.StatusServiceUnavailable, "dictionary %s is degraded, recovery in progress; retry shortly", de.ID)
}

// Dictionary registry endpoints --------------------------------------------

type dictCreateRequest struct {
	Patterns    []string `json:"patterns"`
	PatternsB64 []string `json:"patternsB64"`
	Seed        uint64   `json:"seed"`
}

type dictCreateResponse struct {
	ID          string   `json:"id"`
	Patterns    int      `json:"patterns"`
	TotalLen    int      `json:"totalLen"`
	Source      string   `json:"source"`
	SnapshotKey string   `json:"snapshotKey,omitempty"`
	Evicted     []string `json:"evicted,omitempty"`
	Bytes       int      `json:"bytes,omitempty"` // snapshot size, restore only
}

// handleDictCreate makes a pattern set resident. With a snapshot cache
// configured, the content address of (patterns, options) is looked up
// first: a hit loads the prepared tables with zero PRAM preprocessing
// (source "cache"); a miss preprocesses (§3) and writes the snapshot
// through, so the next boot or identical create hits.
func (s *Server) handleDictCreate(w http.ResponseWriter, r *http.Request) {
	var req dictCreateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	patterns := make([][]byte, 0, len(req.Patterns)+len(req.PatternsB64))
	for _, p := range req.Patterns {
		patterns = append(patterns, []byte(p))
	}
	for _, p := range req.PatternsB64 {
		b, err := base64.StdEncoding.DecodeString(p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad patternsB64 entry: %v", err)
			return
		}
		patterns = append(patterns, b)
	}
	if len(patterns) == 0 {
		writeError(w, http.StatusBadRequest, "at least one pattern required")
		return
	}
	total := 0
	for _, p := range patterns {
		if len(p) == 0 {
			writeError(w, http.StatusBadRequest, "empty patterns are not allowed")
			return
		}
		total += len(p)
	}
	if int64(total) > s.cfg.MaxDictBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			"dictionary is %d bytes, limit %d", total, s.cfg.MaxDictBytes)
		return
	}
	opts := core.Options{Seed: req.Seed}

	// In cluster mode the dictionary's ID is its content address, so every
	// node derives the same name for the same patterns with zero
	// coordination — and create becomes idempotent. A node that does not own
	// the address forwards the create to the owners (once: the routed copy
	// carries the loop-guard header and is served locally).
	id := "" // "" = registry assigns d<seq>
	var key persist.Key
	keyKnown := false
	if s.cluster != nil || s.store != nil {
		key = persist.KeyFor(patterns, opts)
		keyKnown = true
	}
	if c := s.cluster; c != nil {
		id = key.String()
		if !c.membership.OwnsSelf(id) && r.Header.Get(clusterFromHeader) == "" {
			s.forwardCreate(w, r, &req, id)
			return
		}
		if e, ok := s.reg.Get(id); ok {
			writeJSON(w, http.StatusCreated, dictCreateResponse{
				ID:          e.ID,
				Patterns:    e.NumPatterns,
				TotalLen:    e.TotalLen,
				Source:      e.Source,
				SnapshotKey: e.SnapKey,
			})
			return
		}
	}

	keyHex := ""
	if s.store != nil && keyKnown {
		keyHex = key.String()
		start := time.Now()
		if d, aut, _, err := s.store.GetBundle(key); err == nil {
			s.metrics.cacheHits.Add(1)
			s.metrics.recordLoad(time.Since(start))
			entry, evicted := s.registerBundle(id, d, aut, "cache", keyHex, time.Since(start).Nanoseconds())
			s.armDense(entry, s.denseUpgradeFunc(entry, key))
			writeJSON(w, http.StatusCreated, dictCreateResponse{
				ID:          entry.ID,
				Patterns:    entry.NumPatterns,
				TotalLen:    entry.TotalLen,
				Source:      entry.Source,
				SnapshotKey: keyHex,
				Evicted:     evicted,
			})
			return
		} else if !errors.Is(err, persist.ErrNotFound) {
			// Invalid entry: Get quarantined and counted it; preprocess and
			// overwrite.
			s.cfg.Log.Printf("cache entry %s rejected: %v", keyHex, err)
		}
		s.metrics.cacheMisses.Add(1)
	}

	m := pram.New(s.cfg.Procs)
	defer m.Close()
	start := time.Now()
	dict := core.Preprocess(m, patterns, opts)
	prepNs := time.Since(start).Nanoseconds()
	s.metrics.ChargePRAM("preprocess", m.Work(), m.Depth())
	// Write through before publishing the entry: the dictionary is still
	// private here, so encoding cannot race a concurrent reseed.
	if s.store != nil {
		if n, err := s.store.Put(key, dict); err != nil {
			s.cfg.Log.Printf("snapshot write-through failed: %v", err)
			keyHex = ""
		} else {
			s.metrics.recordSave(n)
		}
	}
	entry, evicted := s.registerBundle(id, dict, nil, "preprocess", keyHex, prepNs)
	var upgrade func(*dense.Automaton)
	if keyHex != "" {
		upgrade = s.denseUpgradeFunc(entry, key)
	}
	s.armDense(entry, upgrade)
	writeJSON(w, http.StatusCreated, dictCreateResponse{
		ID:          entry.ID,
		Patterns:    entry.NumPatterns,
		TotalLen:    entry.TotalLen,
		Source:      entry.Source,
		SnapshotKey: keyHex,
		Evicted:     evicted,
	})
}

// registerBundle inserts a ready dictionary under a caller-chosen ID
// (cluster content address) or, with id == "", a registry-assigned one.
func (s *Server) registerBundle(id string, d *core.Dictionary, aut *dense.Automaton, source, snapKey string, prepNs int64) (*Entry, []string) {
	if id == "" {
		return s.reg.RegisterPreparedDense(d, aut, source, snapKey, prepNs)
	}
	return s.reg.RegisterPreparedDenseID(id, d, aut, source, snapKey, prepNs)
}

func (s *Server) handleDictList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"dicts": s.reg.Infos()})
}

func (s *Server) handleDictGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleDictDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.Remove(id) {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

// Matching ------------------------------------------------------------------

type matchHit struct {
	Pos     int `json:"pos"`
	Pattern int `json:"pattern"`
	Length  int `json:"length"`
}

type matchResponse struct {
	N        int        `json:"n"`
	Attempts int        `json:"attempts"`
	Matched  int        `json:"matched"`
	Engine   string     `json:"engine"` // "dense" or "tree"
	Hits     []matchHit `json:"hits"`
}

// handleMatch answers the paper's dictionary matching problem (§3) for one
// text against a resident dictionary: for every position, the longest
// pattern starting there. Entries with a compiled dense automaton serve from
// the deterministic flat-table path with sampled oracle verification
// (serveMatch, dense.go); the rest run the Las Vegas checked tree walk.
// Large texts are sharded across a worker pool with a pattern-length halo
// on either path.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	var req textPayload
	if !s.decodeJSON(w, r, &req) {
		return
	}
	text, err := req.bytes()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad textB64: %v", err)
		return
	}
	resp := matchResponse{N: len(text), Engine: engineTree, Hits: []matchHit{}}
	if len(text) == 0 {
		resp.Attempts = 1
		writeJSON(w, http.StatusOK, resp)
		return
	}
	matches, attempts, engine, err := s.serveMatch(r.Context(), e, text)
	if err != nil {
		var de *DegradedError
		if errors.As(err, &de) {
			writeDegraded(w, de)
			return
		}
		if r.Context().Err() != nil {
			s.metrics.timeouts.Add(1)
			writeCtxError(w, err)
			return
		}
		// A *FingerprintExhaustedError (or anything else unexpected) is a
		// server-side failure: 500, and the breaker decides whether the
		// entry keeps serving.
		writeError(w, http.StatusInternalServerError, "matching failed: %v", err)
		return
	}
	resp.Attempts = attempts
	resp.Engine = engine
	for i, mt := range matches {
		if mt.Length > 0 {
			resp.Hits = append(resp.Hits, matchHit{Pos: i, Pattern: int(mt.PatternID), Length: int(mt.Length)})
		}
	}
	resp.Matched = len(resp.Hits)
	writeJSON(w, http.StatusOK, resp)
}

// Optimal static parse (§5) -------------------------------------------------

type parseResponse struct {
	Phrases int     `json:"phrases"`
	Refs    []int32 `json:"refs"`
	Ratio   float64 `json:"ratio"` // text bytes per phrase
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	var req textPayload
	if !s.decodeJSON(w, r, &req) {
		return
	}
	text, err := req.bytes()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad textB64: %v", err)
		return
	}
	refs, err := s.serveParse(r.Context(), e, text)
	if err != nil {
		if r.Context().Err() != nil {
			s.metrics.timeouts.Add(1)
			writeCtxError(w, err)
			return
		}
		var pe *batch.PanicError
		if errors.As(err, &pe) {
			// The batch executor died; the client did nothing wrong. Same
			// contract as a panic on the solo path (the recover middleware).
			writeError(w, http.StatusInternalServerError, "internal error")
			return
		}
		// The dictionary cannot express this text (§5 requires the prefix
		// property and alphabet coverage) — a client-data problem.
		writeError(w, http.StatusUnprocessableEntity, "no parse: %v", err)
		return
	}
	resp := parseResponse{Phrases: len(refs), Refs: refs}
	if resp.Refs == nil {
		resp.Refs = []int32{}
	}
	if len(refs) > 0 {
		resp.Ratio = float64(len(text)) / float64(len(refs))
	}
	writeJSON(w, http.StatusOK, resp)
}

type expandRequest struct {
	Refs []int32 `json:"refs"`
}

type expandResponse struct {
	N       int    `json:"n"`
	TextB64 string `json:"textB64"`
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	var req expandRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if int64(len(req.Refs))*int64(e.MaxPatLen) > s.cfg.MaxExpandBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			"expansion could exceed %d bytes", s.cfg.MaxExpandBytes)
		return
	}
	text, err := e.Expand(r.Context(), req.Refs, s.cfg.Procs, s.metrics)
	if err != nil {
		if r.Context().Err() != nil {
			s.metrics.timeouts.Add(1)
			writeCtxError(w, err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "bad reference sequence: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, expandResponse{
		N:       len(text),
		TextB64: base64.StdEncoding.EncodeToString(text),
	})
}

// LZ1 compression (§4) ------------------------------------------------------

type compressResponse struct {
	N        int     `json:"n"`
	Tokens   int     `json:"tokens"`
	Attempts int     `json:"attempts"` // parse-verify rounds (1 = first try)
	DataB64  string  `json:"dataB64"`  // LZ1R1 container, base64
	Ratio    float64 `json:"ratio"`    // container bytes / text bytes
}

// handleCompress runs the §4 work-optimal parallel LZ1 parse. It needs no
// resident dictionary — LZ1 is self-referential — so it lives outside
// /v1/dicts.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	var req textPayload
	if !s.decodeJSON(w, r, &req) {
		return
	}
	text, err := req.bytes()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad textB64: %v", err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.metrics.timeouts.Add(1)
		writeCtxError(w, err)
		return
	}
	m := pram.New(s.cfg.Procs)
	defer m.Close()
	c, attempts, err := lz.CompressVerified(m, text)
	s.metrics.ChargePRAM("compress", m.Work(), m.Depth())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "compression failed verification: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := lz.EncodeStream(&buf, c); err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	resp := compressResponse{
		N:        c.N,
		Tokens:   len(c.Tokens),
		Attempts: attempts,
		DataB64:  base64.StdEncoding.EncodeToString(buf.Bytes()),
	}
	if len(text) > 0 {
		resp.Ratio = float64(buf.Len()) / float64(len(text))
	}
	writeJSON(w, http.StatusOK, resp)
}

type decompressRequest struct {
	DataB64 string `json:"dataB64"`
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	var req decompressRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.DataB64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad dataB64: %v", err)
		return
	}
	c, err := lz.DecodeStream(data)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "bad LZ1R1 stream: %v", err)
		return
	}
	if int64(c.N) > s.cfg.MaxExpandBytes || c.N < 0 {
		writeError(w, http.StatusRequestEntityTooLarge,
			"decompressed size %d exceeds %d bytes", c.N, s.cfg.MaxExpandBytes)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.metrics.timeouts.Add(1)
		writeCtxError(w, err)
		return
	}
	m := pram.New(s.cfg.Procs)
	defer m.Close()
	text, err := lz.Uncompress(m, c, lz.ByPointerJumping)
	s.metrics.ChargePRAM("uncompress", m.Work(), m.Depth())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "corrupt stream: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, expandResponse{
		N:       len(text),
		TextB64: base64.StdEncoding.EncodeToString(text),
	})
}

// Observability -------------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot(s.reg, s.limiter)
	snap.Batch.Mode = s.cfg.BatchMode
	snap.Persist.Enabled = s.store != nil
	if s.store != nil {
		snap.Persist.Quarantines = s.store.Quarantined()
		snap.Persist.QuarantineFails = s.store.QuarantineFails()
	}
	snap.Cluster = s.clusterMetrics()
	snap.Resilience.Rpc = s.rpcMetrics()
	if s.quota != nil {
		snap.Quota = quotaSnapshot{
			Enabled:       true,
			PerTenant:     s.quota.PerTenant(),
			ActiveTenants: s.quota.ActiveTenants(),
			Rejected:      s.quota.Rejected(),
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzStore is the snapshot-store section of the readiness payload.
type readyzStore struct {
	Enabled         bool  `json:"enabled"`
	Quarantines     int64 `json:"quarantines"`
	QuarantineFails int64 `json:"quarantineFails"`
	SweepValid      int   `json:"sweepValid"`
	SweepRot        int   `json:"sweepQuarantined"`
}

// readyzResponse is the GET /readyz payload.
type readyzResponse struct {
	Status   string      `json:"status"` // "ready" or "degraded"
	Pool     string      `json:"pool"`   // "ok" or the probe failure
	Degraded []string    `json:"degradedDicts,omitempty"`
	Store    readyzStore `json:"store"`
}

// handleReadyz is the readiness probe, distinct from /healthz (liveness):
// healthz answers "is the process up", readyz answers "can it serve
// correctly right now". Not-ready (503 + Retry-After) when the worker-pool
// probe fails or any resident dictionary's circuit breaker is open —
// conditions that resolve themselves (background reseed) or warrant
// draining traffic elsewhere.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{Status: "ready", Pool: "ok"}

	// Probe the PRAM pool with a tiny parallel reduction: a wedged or
	// panicking pool surfaces here instead of on user traffic.
	if err := probePool(s.cfg.Procs); err != nil {
		resp.Pool = err.Error()
		resp.Status = "degraded"
	}

	resp.Degraded = s.reg.DegradedIDs()
	if len(resp.Degraded) > 0 {
		resp.Status = "degraded"
	}

	resp.Store.Enabled = s.store != nil
	if s.store != nil {
		resp.Store.Quarantines = s.store.Quarantined()
		resp.Store.QuarantineFails = s.store.QuarantineFails()
		resp.Store.SweepValid = s.sweep.Valid
		resp.Store.SweepRot = s.sweep.Quarantined + s.sweep.PreQuarantined
	}

	if resp.Status != "ready" {
		w.Header().Set("Retry-After", degradedRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// probePool checks that a worker-pool machine can complete a super-step:
// it sums 0..n-1 with ParallelFor and verifies the closed form. A panic
// inside the pool comes back as a *pram.StepPanic and is reported as an
// error, not propagated.
func probePool(procs int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool probe panicked: %v", r)
		}
	}()
	m := pram.New(procs)
	defer m.Close()
	const n = 1024
	cells := make([]int64, n)
	m.ParallelFor(n, func(i int) { cells[i] = int64(i) })
	var sum int64
	for _, c := range cells {
		sum += c
	}
	if want := int64(n * (n - 1) / 2); sum != want {
		return fmt.Errorf("pool probe sum mismatch: got %d, want %d", sum, want)
	}
	return nil
}
