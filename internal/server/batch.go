package server

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/pram"
)

// joinBuf recycles the dense join byte buffer across batches, so the steady
// state batched dense dispatch allocates only the per-batch output array.
type joinBuf struct{ bytes []byte }

var joinBufPool = sync.Pool{New: func() any { return new(joinBuf) }}

func getJoinBuf(n int) *joinBuf {
	b := joinBufPool.Get().(*joinBuf)
	if cap(b.bytes) < n {
		b.bytes = make([]byte, 0, n)
	}
	return b
}

func putJoinBuf(b *joinBuf) { joinBufPool.Put(b) }

// Batched request execution. The paper's machine model pays a fixed cost per
// dispatch — machine setup, super-step barriers, per-request halo plumbing —
// that dominates when texts are small: a 512-byte match spends more wall
// time entering the PRAM than scanning. This layer coalesces concurrent
// small requests against the same resident dictionary into one dispatch over
// a separator-joined text (core/separator.go for the tree path,
// dense.SeparatorByte for the compiled path), demultiplexes the result by
// offset range, and answers each request from its own slice. The separator
// safety argument guarantees the joined output is byte-identical to solo
// runs, so batching is invisible to clients except in latency.
//
// Admission mechanics (who waits, who executes, what a cancelled waiter
// does) live in internal/batch; this file owns eligibility, the join, the
// executors, and per-request demux containment: a panic (or injected
// chaos.BatchDemux fault) while slicing one request's answer fails only that
// request — its batch siblings complete normally.

// Batch serving modes (Config.BatchMode).
const (
	BatchOff  = "off"  // every request dispatches alone
	BatchOn   = "on"   // coalesce every match/parse request
	BatchAuto = "auto" // coalesce only texts below the solo-shard threshold
)

// validBatchMode reports whether s names a batch serving mode.
func validBatchMode(s string) bool {
	return s == BatchOff || s == BatchOn || s == BatchAuto
}

// matchResult is one request's slice of a batched match dispatch.
type matchResult struct {
	matches  []core.Match
	attempts int
	engine   string
}

// parseResult is one request's slice of a batched parse dispatch.
type parseResult struct {
	refs []int32
}

// batchOptions builds the per-entry batcher options from the server config.
func (s *Server) batchOptions() batch.Options {
	return batch.Options{
		MaxRequests: s.cfg.BatchMaxRequests,
		MaxBytes:    s.cfg.BatchMaxBytes,
		MaxDelay:    s.cfg.BatchMaxDelay,
	}
}

// batchers lazily builds the entry's match and parse batchers. The executors
// capture the entry, so the batchers live exactly as long as it does;
// eviction needs no teardown.
func (s *Server) batchers(e *Entry) {
	e.batchInit.Do(func() {
		e.matchBatch = batch.New(s.batchOptions(), func(g *batch.Group[matchResult]) {
			s.execMatchBatch(e, g)
		})
		e.parseBatch = batch.New(s.batchOptions(), func(g *batch.Group[parseResult]) {
			s.execParseBatch(e, g)
		})
	})
}

// batchEligible reports whether a text of this size goes through the
// coalescer. Mode "auto" batches only texts too small for the solo
// halo-shard path — exactly the requests whose dispatch overhead dominates;
// a text that would shard solo gains nothing from sharing a machine.
func (s *Server) batchEligible(n int) bool {
	switch s.cfg.BatchMode {
	case BatchOn:
		return true
	case BatchAuto:
		return n < minShardLen
	default:
		return false
	}
}

// serveMatch answers one match request, through the per-entry coalescer when
// the mode and text size make it eligible, through the solo path otherwise.
func (s *Server) serveMatch(ctx context.Context, e *Entry, text []byte) ([]core.Match, int, string, error) {
	if !s.batchEligible(len(text)) {
		if s.cfg.BatchMode != BatchOff {
			s.metrics.batchSolo.Add(1)
		}
		return s.serveMatchSolo(ctx, e, text)
	}
	s.batchers(e)
	res, err := e.matchBatch.Do(ctx, text)
	if err != nil {
		return nil, 0, engineTree, err
	}
	return res.matches, res.attempts, res.engine, nil
}

// serveParse answers one parse request, batched when eligible. Empty texts
// keep the solo path (nothing to coalesce; preserves exact solo semantics).
func (s *Server) serveParse(ctx context.Context, e *Entry, text []byte) ([]int32, error) {
	if len(text) == 0 || !s.batchEligible(len(text)) {
		if s.cfg.BatchMode != BatchOff && len(text) > 0 {
			s.metrics.batchSolo.Add(1)
		}
		return e.Parse(ctx, text, s.cfg.Procs, s.metrics)
	}
	s.batchers(e)
	res, err := e.parseBatch.Do(ctx, text)
	return res.refs, err
}

// completeDemux completes r with the result of fn, containing a panic in fn
// — or an injected chaos.BatchDemux fault — to this request alone: the
// executor goroutine survives to demultiplex the remaining siblings.
func completeDemux[R any](r *batch.Request[R], fn func() (R, error)) {
	defer func() {
		if p := recover(); p != nil {
			var zero R
			r.Complete(zero, fmt.Errorf("batch: demux failed: %v", p))
		}
	}()
	if chaos.Fire(chaos.BatchDemux) {
		panic("chaos: injected demux fault")
	}
	r.Complete(fn())
}

// observeBatch records one dispatched batch and each live request's queue
// delay (admission → dispatch).
func (s *Server) observeBatch(g *batch.Group[matchResult], live []*batch.Request[matchResult]) {
	bytes := int64(0)
	for _, r := range live {
		bytes += int64(len(r.Text))
		s.metrics.observeBatchDelay(r.Admitted)
	}
	s.metrics.observeBatch(len(live), g.Dropped, bytes)
}

// execMatchBatch is the match batcher's executor: it dispatches the whole
// group through one machine run and demultiplexes per request.
func (s *Server) execMatchBatch(e *Entry, g *batch.Group[matchResult]) {
	live := g.Live()
	s.observeBatch(g, live)
	if len(live) == 1 {
		// A batch of one gains nothing from joining; serve it exactly like a
		// solo request (including dense verify sampling and ledger charges).
		r := live[0]
		matches, attempts, engine, err := s.serveMatchSolo(context.Background(), e, r.Text)
		r.Complete(matchResult{matches: matches, attempts: attempts, engine: engine}, err)
		return
	}
	if a := e.denseAut.Load(); s.cfg.DenseMode != DenseOff && a != nil {
		s.execMatchBatchDense(e, a, live)
		return
	}
	if s.cfg.DenseMode != DenseOff {
		s.metrics.denseFallback.Add(int64(len(live)))
	}
	s.execMatchBatchTree(e, live)
}

// execMatchBatchTree joins the live texts over the core separator symbol and
// runs one Las Vegas loop (match + §3.4 check) over the joined buffer.
// Per-request answers are disjoint subslices of the joined M[] array — the
// separator safety argument makes each byte-identical to a solo run.
func (s *Server) execMatchBatchTree(e *Entry, live []*batch.Request[matchResult]) {
	texts := make([][]byte, len(live))
	for i, r := range live {
		texts[i] = r.Text
	}
	j := core.JoinTexts(texts)
	matches, attempts, err := e.MatchJoinedChecked(context.Background(), j, s.cfg.Procs, s.metrics)
	if err != nil {
		for _, r := range live {
			r.Complete(matchResult{}, err)
		}
		return
	}
	for k, r := range live {
		start, end := j.Bounds(k)
		res := matchResult{matches: matches[start:end], attempts: attempts, engine: engineTree}
		completeDemux(r, func() (matchResult, error) { return res, nil })
	}
}

// execMatchBatchDense scans the live texts joined over the automaton's
// separator byte (a byte absent from every pattern, whose transition row
// resets to the root) in one sharded pass. The join buffer is pooled; the
// scan itself allocates nothing beyond the per-batch output array, which the
// per-request slices alias. Sampled oracle verification runs per request on
// the same schedule as the solo path. A dictionary covering all 256 byte
// values has no separator; each request then runs the solo path alone.
func (s *Server) execMatchBatchDense(e *Entry, a *dense.Automaton, live []*batch.Request[matchResult]) {
	sep, ok := a.SeparatorByte()
	if !ok {
		for _, r := range live {
			matches, attempts, engine, err := s.serveMatchSolo(context.Background(), e, r.Text)
			r.Complete(matchResult{matches: matches, attempts: attempts, engine: engine}, err)
		}
		return
	}
	total := 0
	for _, r := range live {
		total += len(r.Text) + 1 // +1 for the trailing separator
	}
	buf := getJoinBuf(total)
	joined := buf.bytes[:0]
	for _, r := range live {
		joined = append(joined, r.Text...)
		joined = append(joined, sep)
	}
	// The output array is NOT pooled: per-request results alias it, and they
	// outlive this executor (the waiters read them after Complete).
	out := make([]core.Match, total)
	counters := denseMatchShardedInto(a, joined, out, s.cfg.Procs)
	s.metrics.ChargePRAM("match", counters.Work, counters.Depth)

	off := 0
	for _, r := range live {
		start, end := off, off+len(r.Text)
		off = end + 1
		res := matchResult{matches: out[start:end], attempts: 1, engine: engineDense}
		completeDemux(r, func() (matchResult, error) {
			if n := e.denseReqs.Add(1); n == 1 || n%verifySampleEvery == 0 {
				if verified, served := s.denseVerify(e, r.Text, res.matches); !served {
					return matchResult{matches: verified, attempts: 1, engine: engineTree}, nil
				}
			}
			s.metrics.denseServed.Add(1)
			return res, nil
		})
	}
	buf.bytes = joined
	putJoinBuf(buf)
}

// denseVerify cross-checks one batched dense result against the tree-walk
// oracle. It reports (oracleResult, serveDense): serveDense is false exactly
// when the oracle disagrees, in which case its verified answer is served.
// Oracle-side trouble (degraded entry, exhausted fingerprints) cannot indict
// the deterministic dense result and leaves it served, matching the solo
// path's policy.
func (s *Server) denseVerify(e *Entry, text []byte, got []core.Match) ([]core.Match, bool) {
	want, _, _, err := e.MatchChecked(context.Background(), text, s.cfg.Procs, s.metrics)
	if err != nil {
		return nil, true
	}
	if sameMatchSets(e.patterns(), got, want) {
		s.metrics.denseVerifyPass.Add(1)
		return nil, true
	}
	s.metrics.denseVerifyFail.Add(1)
	e.logf("entry %s: batched dense result diverged from oracle on %d-byte text; serving oracle result", e.ID, len(text))
	return want, false
}

// execParseBatch runs one §5 parse over the joined buffer. The separator
// argument is stronger here than for matching: the parse consumes only B[]
// (longest-prefix) values, which never cross a separator, so each slice's
// optimal phrase sequence is exactly its solo parse. Per-slice errors (a
// text the dictionary cannot express) fail only their own request.
func (s *Server) execParseBatch(e *Entry, g *batch.Group[parseResult]) {
	live := g.Live()
	bytes := int64(0)
	for _, r := range live {
		bytes += int64(len(r.Text))
		s.metrics.observeBatchDelay(r.Admitted)
	}
	s.metrics.observeBatch(len(live), g.Dropped, bytes)
	if len(live) == 1 {
		r := live[0]
		refs, err := e.Parse(context.Background(), r.Text, s.cfg.Procs, s.metrics)
		r.Complete(parseResult{refs: refs}, err)
		return
	}
	texts := make([][]byte, len(live))
	for i, r := range live {
		texts[i] = r.Text
	}
	j := core.JoinTexts(texts)
	m := pram.New(s.cfg.Procs)
	e.mu.RLock()
	allRefs, errs := e.dict.CompressStaticJoined(m, j)
	e.mu.RUnlock()
	s.metrics.ChargePRAM("parse", m.Work(), m.Depth())
	m.Close()
	for k, r := range live {
		refs, err := allRefs[k], errs[k]
		completeDemux(r, func() (parseResult, error) { return parseResult{refs: refs}, err })
	}
}
