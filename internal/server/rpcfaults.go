package server

import (
	"net/http"

	"repro/internal/chaos"
)

// RPC fault-injection admin surface (DESIGN.md §16). Only mounted when
// Config.RPCFaultAdmin is set — it exists for chaos drills (chaossoak
// -partition) and must never be exposed on a production listener. The
// routes are registered as observability routes so they bypass the
// limiter: the whole point is to reach a node mid-partition.

// rpcFaultsRequest is the POST /v1/rpcfaults body. An empty plan clears
// all installed wire faults.
type rpcFaultsRequest struct {
	Seed uint64 `json:"seed"`
	Plan string `json:"plan"`
}

// rpcFaultsResponse echoes the installed plan plus per-point fire
// counters, so a soak harness can confirm its faults actually fired.
type rpcFaultsResponse struct {
	Plan   string             `json:"plan"`
	Points []chaos.PointStats `json:"points,omitempty"`
}

// handleRPCFaultsSet installs (or clears) a wire-fault plan on the
// outbound RPC pool.
func (s *Server) handleRPCFaultsSet(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil || c.pool == nil {
		writeError(w, http.StatusServiceUnavailable, "rpc fault admin requires cluster mode")
		return
	}
	var req rpcFaultsRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if err := c.pool.SetFaults(req.Seed, req.Plan); err != nil {
		writeError(w, http.StatusBadRequest, "bad fault plan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, rpcFaultsResponse{
		Plan:   c.pool.FaultPlan(),
		Points: c.pool.FaultStats(),
	})
}

// handleRPCFaultsGet reports the installed plan and its fire counters.
func (s *Server) handleRPCFaultsGet(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil || c.pool == nil {
		writeError(w, http.StatusServiceUnavailable, "rpc fault admin requires cluster mode")
		return
	}
	writeJSON(w, http.StatusOK, rpcFaultsResponse{
		Plan:   c.pool.FaultPlan(),
		Points: c.pool.FaultStats(),
	})
}

// rpcMetrics builds the /metrics resilience.rpc section: the outbound
// pool's breaker/budget/fault accounting plus the server-side deadline
// sheds and stale serves. Nil outside cluster mode, so the section is
// omitted from single-node snapshots.
func (s *Server) rpcMetrics() *rpcSnapshot {
	c := s.cluster
	if c == nil || c.pool == nil {
		return nil
	}
	return &rpcSnapshot{
		Snapshot:      c.pool.Snapshot(),
		DeadlineSheds: s.metrics.deadlineSheds.Load(),
		StaleServes:   s.metrics.staleServes.Load(),
	}
}
