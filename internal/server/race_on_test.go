//go:build race

package server

// raceEnabled reports whether the race detector instruments this build.
// Allocation pins are skipped under -race: the detector deliberately
// randomizes sync.Pool reuse, so AllocsPerRun measures the detector, not the
// code under test.
const raceEnabled = true
