//go:build chaos

package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/chaos"
	"repro/internal/textgen"
)

// installPlan parses and installs a chaos plan for the duration of the test.
func installPlan(t *testing.T, seed uint64, spec string) *chaos.Plan {
	t.Helper()
	p, err := chaos.ParsePlan(seed, spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	chaos.Install(p)
	t.Cleanup(func() { chaos.Install(nil) })
	return p
}

// firedCount reads the fired counter for one point from a plan's stats.
func firedCount(p *chaos.Plan, pt chaos.Point) int64 {
	for _, st := range p.Stats() {
		if st.Point == pt {
			return st.Fired
		}
	}
	return 0
}

// createPlanted registers a planted dictionary and returns the created ID,
// the text, and its Aho–Corasick oracle. Registration happens before any
// plan is installed by the caller, so preprocessing is never perturbed.
func createPlanted(t *testing.T, base string, genSeed uint64, n int) (string, []byte, *ahocorasick.Automaton) {
	t.Helper()
	gen := textgen.New(genSeed)
	text, patterns := gen.PlantedDictionary(n, 24, 8, 101, 4)
	patStrs := make([]string, len(patterns))
	for i, p := range patterns {
		patStrs[i] = string(p)
	}
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": patStrs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created.ID, text, ahocorasick.New(patterns)
}

// checkMatchResponse verifies one matchResponse against the oracle.
func checkMatchResponse(mr matchResponse, text []byte, ac *ahocorasick.Automaton) error {
	oracle := ac.Match(text)
	want := 0
	for _, p := range oracle {
		if p >= 0 {
			want++
		}
	}
	if mr.N != len(text) || mr.Matched != want || mr.Attempts < 1 {
		return fmt.Errorf("got %d hits over %d bytes (attempts %d), oracle says %d over %d",
			mr.Matched, mr.N, mr.Attempts, want, len(text))
	}
	for _, h := range mr.Hits {
		if p := oracle[h.Pos]; int(p) != h.Pattern || int(ac.PatternLen(p)) != h.Length {
			return fmt.Errorf("pos %d: got pattern %d len %d, oracle %d len %d",
				h.Pos, h.Pattern, h.Length, p, ac.PatternLen(p))
		}
	}
	return nil
}

// TestChaosForcedCollisionReseedServes is the acceptance path for matching:
// a forced fingerprint collision makes the Monte Carlo phase lie, the §3.4
// checker catches it, the entry reseeds, and the request still answers 200
// with oracle-exact output — the client never sees the fault, only
// attempts > 1.
func TestChaosForcedCollisionReseedServes(t *testing.T) {
	// DenseOff throughout this file: the injected faults live in the Las
	// Vegas fingerprint path, which the deterministic dense automaton
	// bypasses (TestDenseServesDegradedEntry pins that rescue).
	_, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOff})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	// A burst of 64 forced collisions: enough that the first attempt's
	// output is certainly corrupt (one collision can land somewhere
	// harmless), yet far fewer than the unequal comparisons of a single
	// attempt over 8 KiB, so the budget cannot stretch to matchAttempts
	// failures.
	id, text, ac := createPlanted(t, base, 11, 1<<13)
	plan := installPlan(t, 1, "fp.collide:p=1,n=64")

	status, body := postJSON(t, fmt.Sprintf("%s/v1/dicts/%s/match", base, id),
		map[string]any{"textB64": base64.StdEncoding.EncodeToString(text)})
	if status != http.StatusOK {
		t.Fatalf("match under one forced collision: %d %s", status, body)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (the forced collision must cost a real reseed)", mr.Attempts)
	}
	if err := checkMatchResponse(mr, text, ac); err != nil {
		t.Fatal(err)
	}
	if got := firedCount(plan, chaos.FPCollide); got < 1 {
		t.Fatalf("fp.collide fired %d times, want >= 1", got)
	}
	// The reseed is charged to the preprocess ledger: initial Preprocess
	// plus at least one reseed.
	var snap MetricsSnapshot
	getJSON(t, base+"/metrics", &snap)
	if snap.PRAM["preprocess"].Ops < 2 {
		t.Errorf("preprocess ledger ops = %d, want >= 2 (reseed must be charged)", snap.PRAM["preprocess"].Ops)
	}
}

// TestChaosExhaustionOpensBreaker drives MatchChecked to full Las Vegas
// exhaustion: with every fingerprint comparison forced to collide, all
// matchAttempts fail, the handler maps the typed error to 500, the reseed
// attempts are charged to the preprocess ledger, and the second exhaustion
// opens the circuit breaker. Once the faults stop, the background rebuild
// restores service and the answers are oracle-exact again.
func TestChaosExhaustionOpensBreaker(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOff})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id, text, ac := createPlanted(t, base, 13, 1<<12)
	matchURL := fmt.Sprintf("%s/v1/dicts/%s/match", base, id)
	payload := map[string]any{"textB64": base64.StdEncoding.EncodeToString(text)}

	installPlan(t, 2, "fp.collide:p=1")

	// Exhaustion #1: every attempt fails, typed error maps to 500.
	status, body := postJSON(t, matchURL, payload)
	if status != http.StatusInternalServerError {
		t.Fatalf("first exhausted request: %d %s, want 500", status, body)
	}
	if !strings.Contains(string(body), "matching failed") {
		t.Fatalf("500 body does not surface the failure: %s", body)
	}

	// Exhaustion #2 trips the breaker (breakerThreshold = 2).
	if status, body = postJSON(t, matchURL, payload); status != http.StatusInternalServerError {
		t.Fatalf("second exhausted request: %d %s, want 500", status, body)
	}

	var snap MetricsSnapshot
	getJSON(t, base+"/metrics", &snap)
	if snap.Resilience.FpExhaustions != 2 {
		t.Errorf("fpExhaustions = %d, want 2", snap.Resilience.FpExhaustions)
	}
	if snap.Resilience.BreakerOpens < 1 {
		t.Errorf("breakerOpens = %d, want >= 1", snap.Resilience.BreakerOpens)
	}
	// 2 requests x (matchAttempts-1) reseeds each, plus the initial
	// Preprocess, plus possibly the background rebuild.
	if want := int64(1 + 2*(matchAttempts-1)); snap.PRAM["preprocess"].Ops < want {
		t.Errorf("preprocess ledger ops = %d, want >= %d (every reseed charged)",
			snap.PRAM["preprocess"].Ops, want)
	}

	// Stop injecting; the breaker's background rebuild (plus, at worst, one
	// more exhaustion/recovery cycle already in flight) must bring the
	// entry back. Accept 500/503 while recovery races, insist on a correct
	// 200 before the deadline.
	chaos.Install(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body = postJSON(t, matchURL, payload)
		if status == http.StatusOK {
			break
		}
		if status != http.StatusInternalServerError && status != http.StatusServiceUnavailable {
			t.Fatalf("unexpected status during recovery: %d %s", status, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("entry never recovered: last status %d %s", status, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if err := checkMatchResponse(mr, text, ac); err != nil {
		t.Fatalf("post-recovery answer wrong: %v", err)
	}
	for time.Now().Before(deadline) {
		getJSON(t, base+"/metrics", &snap)
		if snap.Resilience.BreakerRecoveries >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if snap.Resilience.BreakerRecoveries < 1 {
		t.Errorf("breakerRecoveries = %d, want >= 1", snap.Resilience.BreakerRecoveries)
	}
	if got := srv.Registry().DegradedIDs(); len(got) != 0 {
		t.Errorf("entries still degraded after recovery: %v", got)
	}
}

// TestChaosConcurrentFaultSchedule is the e2e acceptance test: 112
// concurrent requests — buffered matches, LZ1 round trips, and NDJSON match
// streams — under a randomized but seeded fault schedule mixing fingerprint
// collisions, LZ1 token corruption, straggler delays, and stream stalls.
// Fault budgets are capped below the retry limits (fp.collide n <
// matchAttempts, lz.corrupt n < compressAttempts), so every request must
// succeed and every answer must agree with its oracle; the faults only show
// up as extra Las Vegas rounds.
func TestChaosConcurrentFaultSchedule(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, MaxInflight: 256, DenseMode: DenseOff,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id, text, ac := createPlanted(t, base, 17, 1<<14)
	oracle := ac.Match(text)
	wantHits := 0
	for _, p := range oracle {
		if p >= 0 {
			wantHits++
		}
	}
	if wantHits == 0 {
		t.Fatal("degenerate workload: no oracle matches")
	}

	gen := textgen.New(18)
	const matchReqs, lzReqs, streamReqs = 48, 48, 16
	lzPayloads := make([][]byte, lzReqs)
	for i := range lzPayloads {
		lzPayloads[i] = gen.Repetitive(2048+16*i, 64, 0.02)
	}

	plan := installPlan(t, 0xC0FFEE,
		"fp.collide:p=0.002,n=4;lz.corrupt:p=1,n=2;pool.delay:p=0.01,delay=200us;stream.stall:p=0.1,delay=500us")

	var wg sync.WaitGroup
	errs := make(chan error, matchReqs+lzReqs+streamReqs)
	textB64 := base64.StdEncoding.EncodeToString(text)

	var attemptsTotal, lzAttemptsTotal int64
	var mu sync.Mutex

	for i := 0; i < matchReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJSON(t, fmt.Sprintf("%s/v1/dicts/%s/match", base, id),
				map[string]any{"textB64": textB64})
			if status != http.StatusOK {
				errs <- fmt.Errorf("match %d: status %d: %s", i, status, body)
				return
			}
			var mr matchResponse
			if err := json.Unmarshal(body, &mr); err != nil {
				errs <- fmt.Errorf("match %d: %v", i, err)
				return
			}
			if err := checkMatchResponse(mr, text, ac); err != nil {
				errs <- fmt.Errorf("match %d: %v", i, err)
				return
			}
			mu.Lock()
			attemptsTotal += int64(mr.Attempts)
			mu.Unlock()
		}(i)
	}
	for i := 0; i < lzReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := lzPayloads[i]
			status, body := postJSON(t, base+"/v1/compress",
				map[string]any{"textB64": base64.StdEncoding.EncodeToString(payload)})
			if status != http.StatusOK {
				errs <- fmt.Errorf("compress %d: status %d: %s", i, status, body)
				return
			}
			var cr compressResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				errs <- fmt.Errorf("compress %d: %v", i, err)
				return
			}
			if cr.N != len(payload) || cr.Attempts < 1 {
				errs <- fmt.Errorf("compress %d: N=%d attempts=%d", i, cr.N, cr.Attempts)
				return
			}
			mu.Lock()
			lzAttemptsTotal += int64(cr.Attempts)
			mu.Unlock()
			status, body = postJSON(t, base+"/v1/decompress", map[string]any{"dataB64": cr.DataB64})
			if status != http.StatusOK {
				errs <- fmt.Errorf("decompress %d: status %d: %s", i, status, body)
				return
			}
			var dr expandResponse
			if err := json.Unmarshal(body, &dr); err != nil {
				errs <- fmt.Errorf("decompress %d: %v", i, err)
				return
			}
			round, err := base64.StdEncoding.DecodeString(dr.TextB64)
			if err != nil || !bytes.Equal(round, payload) {
				errs <- fmt.Errorf("decompress %d: round trip mismatch (err=%v)", i, err)
			}
		}(i)
	}
	for i := 0; i < streamReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(
				fmt.Sprintf("%s/v1/dicts/%s/match/stream?segment=2048", base, id),
				"application/octet-stream", bytes.NewReader(text))
			if err != nil {
				errs <- fmt.Errorf("stream %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("stream %d: status %d", i, resp.StatusCode)
				return
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			events := 0
			sawSummary := false
			for sc.Scan() {
				line := sc.Text()
				if strings.Contains(line, `"summary"`) {
					sawSummary = true
					var tr struct {
						Summary streamSummary `json:"summary"`
					}
					if err := json.Unmarshal([]byte(line), &tr); err != nil {
						errs <- fmt.Errorf("stream %d: bad summary: %v", i, err)
						return
					}
					if tr.Summary.N != int64(len(text)) {
						errs <- fmt.Errorf("stream %d: summary n=%d, want %d", i, tr.Summary.N, len(text))
						return
					}
					continue
				}
				var ev struct {
					Pos     int `json:"pos"`
					Pattern int `json:"pattern"`
					Length  int `json:"length"`
				}
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					errs <- fmt.Errorf("stream %d: bad line %q: %v", i, line, err)
					return
				}
				if p := oracle[ev.Pos]; int(p) != ev.Pattern || int(ac.PatternLen(p)) != ev.Length {
					errs <- fmt.Errorf("stream %d: event %+v disagrees with oracle", i, ev)
					return
				}
				events++
			}
			if err := sc.Err(); err != nil {
				errs <- fmt.Errorf("stream %d: read: %v", i, err)
				return
			}
			if !sawSummary {
				errs <- fmt.Errorf("stream %d: no summary trailer (silent truncation)", i)
				return
			}
			if events != wantHits {
				errs <- fmt.Errorf("stream %d: %d events, oracle says %d", i, events, wantHits)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The schedule must actually have fired: the full LZ corruption budget
	// was consumed and surfaced as verified retries, and any fingerprint
	// collisions that fired cost real extra rounds without touching output.
	if got := firedCount(plan, chaos.LZCorrupt); got != 2 {
		t.Errorf("lz.corrupt fired %d times, want 2", got)
	}
	if lzAttemptsTotal != lzReqs+2 {
		t.Errorf("total compress attempts = %d, want %d (each corruption = one retry)", lzAttemptsTotal, lzReqs+2)
	}
	if fired := firedCount(plan, chaos.FPCollide); fired > 0 && attemptsTotal == matchReqs {
		// Collisions during buffered matches must surface as extra attempts
		// (they may also land in stream windows, where the summary rounds
		// absorb them — only flag the impossible combination).
		var snap MetricsSnapshot
		getJSON(t, base+"/metrics", &snap)
		if snap.Streams.Segments == 0 {
			t.Errorf("fp.collide fired %d times but no request paid an extra attempt", fired)
		}
	}
}
