package server

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pram"
)

// Resilience policy around the Las Vegas matching loop. One fingerprint
// failure is routine (reseed and retry, §3.4); matchAttempts consecutive
// failures on one request is a FingerprintExhaustedError (a 500 — the
// request is lost but the entry may still be fine); breakerThreshold
// consecutive *exhausted requests* on the same entry mean the entry's
// randomness is somehow poisoned, and the circuit breaker takes it out of
// service while fresh fingerprints are rebuilt in the background. Requests
// arriving meanwhile fail fast with a DegradedError (a 503 + Retry-After)
// instead of burning matchAttempts full match/check rounds each.

// breakerThreshold is how many consecutive MatchChecked exhaustions open an
// entry's circuit breaker.
const breakerThreshold = 2

// FingerprintExhaustedError reports that every Las Vegas attempt on one
// request failed the deterministic checker — with 61-bit fingerprints this
// effectively never happens by chance; it indicates fault injection or a
// real defect.
type FingerprintExhaustedError struct {
	ID       string
	Attempts int
}

func (e *FingerprintExhaustedError) Error() string {
	return fmt.Sprintf("server: %d consecutive fingerprint failures on %s", e.Attempts, e.ID)
}

// DegradedError reports that the entry's circuit breaker is open; the
// request was refused before any matching work.
type DegradedError struct {
	ID string
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("server: dictionary %s is degraded, recovery in progress", e.ID)
}

// degradedRetryAfter is the Retry-After value (seconds) sent with breaker
// 503s. Recovery is a sequential fingerprint rebuild — milliseconds — so one
// second is already generous.
const degradedRetryAfter = "1"

// Degraded reports whether the entry's circuit breaker is open.
func (e *Entry) Degraded() bool { return e.degraded.Load() }

// noteSuccess closes the failure streak after a verified match.
func (e *Entry) noteSuccess() { e.failStreak.Store(0) }

// noteExhaustion records one fully exhausted request and opens the breaker
// at the threshold. Opening spawns the background recovery exactly once (the
// CompareAndSwap is the election).
func (e *Entry) noteExhaustion(mt *Metrics) {
	if mt != nil {
		mt.fpExhaustions.Add(1)
	}
	if e.failStreak.Add(1) < breakerThreshold {
		return
	}
	if !e.degraded.CompareAndSwap(false, true) {
		return
	}
	if mt != nil {
		mt.breakerOpens.Add(1)
	}
	e.logf("entry %s: breaker open after %d consecutive exhausted requests; rebuilding fingerprints in background", e.ID, breakerThreshold)
	go e.recoverDegraded(mt)
}

// recoverDegraded rebuilds the entry's randomized state — a reseed with a
// fresh seed rebuilds the fingerprint hasher and dictionary table, which is
// the entire random component of §3 preprocessing; the deterministic
// structures (suffix tree, NCA, anchors) are seed-independent and stay. The
// cost is charged to the "preprocess" ledger like any reseed.
func (e *Entry) recoverDegraded(mt *Metrics) {
	m := pram.NewSequential()
	e.mu.Lock()
	e.seed = mix64(e.seed) | 1 // fresh, never zero
	e.dict.Reseed(m, e.seed)
	e.mu.Unlock()
	if mt != nil {
		mt.ChargePRAM("preprocess", m.Work(), m.Depth())
		mt.breakerRecoveries.Add(1)
	}
	e.failStreak.Store(0)
	e.degraded.Store(false)
	e.logf("entry %s: recovered, fingerprints rebuilt", e.ID)
}

// reseedBackoff sleeps between Las Vegas attempts: bounded exponential
// growth (1 ms doubling, capped at 32 ms) plus deterministic jitter derived
// from the entry seed, so simultaneous failing requests don't re-match in
// lockstep. It runs only on the failure path — the fault-free request never
// sleeps and its ledger is untouched (sleeps charge no PRAM work anyway).
// Cancellation cuts the sleep short; the caller re-checks ctx at loop top.
func reseedBackoff(ctx context.Context, attempt int, seed uint64) {
	d := time.Millisecond << uint(attempt-1)
	if d > 32*time.Millisecond {
		d = 32 * time.Millisecond
	}
	jitterMod := uint64(d / 2)
	if jitterMod > 0 {
		d += time.Duration(mix64(seed+uint64(attempt)) % jitterMod)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// mix64 is the splitmix64 finalizer, used for seed evolution and jitter.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
