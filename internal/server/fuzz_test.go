package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fuzzTarget is a shared server instance for the fuzzer. One dictionary is
// pre-registered so the {id} routes exercise their deep paths ("d1" is the
// first assigned ID); tight body/dict limits keep each iteration cheap.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		var err error
		fuzzSrv, err = New(Config{
			Addr:         "127.0.0.1:0",
			Procs:        1,
			MaxDicts:     4,
			MaxInflight:  16,
			MaxBodyBytes: 1 << 12,
			MaxDictBytes: 1 << 10,
			Log:          quietLogger(),
		})
		if err != nil {
			panic(err)
		}
		rec := httptest.NewRecorder()
		body := strings.NewReader(`{"patterns": ["ab", "ba", "abb"]}`)
		req := httptest.NewRequest("POST", "/v1/dicts", body)
		fuzzSrv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			panic("fuzz setup: dictionary registration failed")
		}
	})
	return fuzzSrv.Handler()
}

// fuzzRoutes are the JSON-decoding endpoints the fuzzer drives, selected by
// the first fuzz argument.
var fuzzRoutes = []struct {
	method string
	path   string
}{
	{"POST", "/v1/dicts"},
	{"POST", "/v1/dicts/d1/match"},
	{"POST", "/v1/dicts/d1/parse"},
	{"POST", "/v1/dicts/d1/expand"},
	{"POST", "/v1/dicts/nosuch/match"},
	{"POST", "/v1/compress"},
	{"POST", "/v1/decompress"},
	{"GET", "/v1/dicts"},
	{"GET", "/metrics"},
	{"DELETE", "/v1/dicts/zzz"},
}

// FuzzHandleRequests feeds arbitrary bytes to every JSON request decoder.
// The contract: no panic ever reaches the client, and every response is a
// well-formed HTTP status with a JSON body.
func FuzzHandleRequests(f *testing.F) {
	f.Add(uint8(0), []byte(`{"patterns": ["ab", "ba"]}`))
	f.Add(uint8(0), []byte(`{"patterns": [""]}`))
	f.Add(uint8(0), []byte(`{"patternsB64": ["not-base64!"]}`))
	f.Add(uint8(1), []byte(`{"text": "abba"}`))
	f.Add(uint8(1), []byte(`{"textB64": "%%%"}`))
	f.Add(uint8(2), []byte(`{"text": "abab"}`))
	f.Add(uint8(3), []byte(`{"refs": [0, 1, 2]}`))
	f.Add(uint8(3), []byte(`{"refs": [-1, 99999]}`))
	f.Add(uint8(5), []byte(`{"text": "aaaaaaaa"}`))
	f.Add(uint8(6), []byte(`{"dataB64": "TFoxUjEK"}`))
	f.Add(uint8(6), []byte(`{"dataB64": 42}`))
	f.Add(uint8(1), []byte(`{not json at all`))
	f.Add(uint8(2), []byte(``))
	f.Add(uint8(4), []byte(`null`))
	f.Add(uint8(7), []byte(`ignored`))

	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		h := fuzzHandler()
		route := fuzzRoutes[int(which)%len(fuzzRoutes)]
		req := httptest.NewRequest(route.method, route.path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a decoder panic propagates and fails the fuzz run
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("%s %s: invalid status %d", route.method, route.path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct == "application/json" {
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("%s %s: status %d with invalid JSON body %q",
					route.method, route.path, rec.Code, rec.Body.Bytes())
			}
		}
	})
}
