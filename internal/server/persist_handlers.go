package server

import (
	"encoding/hex"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/persist"
)

// Snapshot administration ----------------------------------------------------
//
// POST /v1/dicts/{id}/snapshot serializes a resident dictionary to the cache
// under an explicit key; POST /v1/dicts/restore loads a snapshot back into
// the registry by key. Together with the automatic create-time write-through
// these let operators pin, migrate and prewarm dictionaries: snapshot on one
// server, copy the file, restore on another — preprocessing runs on neither.

type snapshotResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	Bytes int    `json:"bytes"`
	Path  string `json:"path"`
}

// handleDictSnapshot writes the entry's current state (including any reseed
// it has absorbed) to the snapshot store. The snapshot's content address is
// derived from the entry's patterns and current seed, so a restore of these
// bytes reproduces this entry exactly.
func (s *Server) handleDictSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, "no snapshot store: start the server with -cache-dir")
		return
	}
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	data := e.SnapshotBytes()
	key := persist.KeyForSnapshot(data)
	n, err := s.store.PutBytes(key, data)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot write failed: %v", err)
		return
	}
	s.metrics.recordSave(n)
	writeJSON(w, http.StatusOK, snapshotResponse{
		ID:    e.ID,
		Key:   key.String(),
		Bytes: n,
		Path:  s.store.Path(key),
	})
}

// handleDictSnapshotGet serves the raw DMSNAP bundle of a resident
// dictionary — the wire format of cluster replication. Unlike POST
// .../snapshot it needs no store: the bytes are encoded from the live entry
// (under its read lock), so the download always reflects the entry's
// current state, reseeds and compiled dense automaton included.
func (s *Server) handleDictSnapshotGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	data := e.SnapshotBytes()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

type restoreRequest struct {
	Key string `json:"key"`
}

// handleDictRestore loads a stored snapshot into the registry as a new
// entry. The load is a sequential table read — the PRAM preprocess ledger
// does not move.
func (s *Server) handleDictRestore(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, "no snapshot store: start the server with -cache-dir")
		return
	}
	var req restoreRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	raw, err := hex.DecodeString(req.Key)
	if err != nil || len(raw) != len(persist.Key{}) {
		writeError(w, http.StatusBadRequest, "key must be %d hex characters", 2*len(persist.Key{}))
		return
	}
	var key persist.Key
	copy(key[:], raw)
	start := time.Now()
	d, aut, size, err := s.store.GetBundle(key)
	if err != nil {
		if errors.Is(err, persist.ErrNotFound) {
			writeError(w, http.StatusNotFound, "no snapshot %s", req.Key)
			return
		}
		// GetBundle quarantined and counted the invalid file.
		writeError(w, http.StatusUnprocessableEntity, "snapshot rejected: %v", err)
		return
	}
	elapsed := time.Since(start)
	s.metrics.recordLoad(elapsed)
	entry, evicted := s.reg.RegisterPreparedDense(d, aut, "snapshot", key.String(), elapsed.Nanoseconds())
	// Content-addressed snapshots are never rewritten (the key is the hash
	// of the bytes), so a background compile here has no upgrade hook.
	s.armDense(entry, nil)
	writeJSON(w, http.StatusCreated, dictCreateResponse{
		ID:          entry.ID,
		Patterns:    entry.NumPatterns,
		TotalLen:    entry.TotalLen,
		Source:      entry.Source,
		SnapshotKey: key.String(),
		Evicted:     evicted,
		Bytes:       size,
	})
}
