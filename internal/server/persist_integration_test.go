package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// persistTestPatterns is a fixed pattern set shared by the persistence
// integration tests (content addressing is input-sensitive, so the tests pin
// the inputs).
func persistTestPatterns() []string {
	return []string{"banana", "ana", "nab", "bandana", "band", "an"}
}

func createDictFull(t *testing.T, base string, patterns []string) dictCreateResponse {
	t.Helper()
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": patterns})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created
}

func matchHits(t *testing.T, base, id, text string) []matchHit {
	t.Helper()
	status, body := postJSON(t, base+"/v1/dicts/"+id+"/match", map[string]any{"text": text})
	if status != http.StatusOK {
		t.Fatalf("match: %d %s", status, body)
	}
	var out matchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Matched == 0 {
		t.Fatalf("degenerate match workload: no hits in %q", text)
	}
	return out.Hits
}

func metricsSnapshot(t *testing.T, base string) MetricsSnapshot {
	t.Helper()
	var snap MetricsSnapshot
	if status := getJSON(t, base+"/metrics", &snap); status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	return snap
}

// TestCacheWarmStartAndHit is the persistence acceptance test: a dictionary
// registered on one server instance is written through to the cache
// directory; a second instance sharing the directory boots with the
// dictionary already resident ("cache" source) and charges zero PRAM
// preprocessing for it; re-creating the same pattern set on the warm server
// is a cache hit, again with no preprocessing; and the loaded dictionary
// answers matches identically to the one that was preprocessed.
func TestCacheWarmStartAndHit(t *testing.T) {
	// Every server in this file runs DenseOff: these tests pin exact save
	// counts and on-disk snapshot bytes, which the background dense compile's
	// write-through upgrade would perturb. DENSE-section persistence is
	// covered by persist's bundle tests and TestDenseSnapshotWarmStart.
	dir := t.TempDir()
	patterns := persistTestPatterns()
	text := "xxbananabandanabxnabandxx"

	// First life: preprocess and write through.
	srvA, baseA, shutdownA := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxDicts: 4, MaxInflight: 16, DenseMode: DenseOff, CacheDir: dir,
	})
	created := createDictFull(t, baseA, patterns)
	if created.Source != "preprocess" {
		t.Fatalf("first create source = %q, want preprocess", created.Source)
	}
	if created.SnapshotKey == "" {
		t.Fatal("first create reported no snapshot key despite write-through")
	}
	wantMatch := matchHits(t, baseA, created.ID, text)
	snapA := metricsSnapshot(t, baseA)
	if snapA.Persist.CacheMisses != 1 || snapA.Persist.SnapshotSaves != 1 {
		t.Fatalf("after first create: misses=%d saves=%d, want 1/1",
			snapA.Persist.CacheMisses, snapA.Persist.SnapshotSaves)
	}
	if srvA.Store() == nil || len(mustKeys(t, srvA)) != 1 {
		t.Fatalf("expected exactly one snapshot on disk, got %d", len(mustKeys(t, srvA)))
	}
	if err := shutdownA(); err != nil {
		t.Fatalf("shutdown A: %v", err)
	}

	// Second life: warm start from the same directory.
	srvB, baseB, shutdownB := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxDicts: 4, MaxInflight: 16, DenseMode: DenseOff, CacheDir: dir,
	})
	defer func() {
		if err := shutdownB(); err != nil {
			t.Errorf("shutdown B: %v", err)
		}
	}()
	if n := srvB.Registry().Len(); n != 1 {
		t.Fatalf("warm start: %d resident dictionaries, want 1", n)
	}
	infos := srvB.Registry().Infos()
	if infos[0].Source != "cache" {
		t.Fatalf("warm-started entry source = %q, want cache", infos[0].Source)
	}
	if infos[0].SnapKey != created.SnapshotKey {
		t.Fatalf("warm-started entry key = %q, want %q", infos[0].SnapKey, created.SnapshotKey)
	}

	// The warm boot and the cache hit below must not move the preprocess
	// ledger: loading is a sequential table read, not §3 work.
	if pre := metricsSnapshot(t, baseB).PRAM["preprocess"]; pre.Work != 0 || pre.Ops != 0 {
		t.Fatalf("warm start charged preprocessing: %+v", pre)
	}

	got := matchHits(t, baseB, infos[0].ID, text)
	if len(got) != len(wantMatch) {
		t.Fatalf("match length changed across restart: %d vs %d", len(got), len(wantMatch))
	}
	for i := range got {
		if got[i] != wantMatch[i] {
			t.Fatalf("match[%d] = %+v after restart, want %+v", i, got[i], wantMatch[i])
		}
	}

	// Same pattern set again: content-addressed hit, no preprocessing.
	hit := createDictFull(t, baseB, patterns)
	if hit.Source != "cache" {
		t.Fatalf("repeat create source = %q, want cache", hit.Source)
	}
	if hit.SnapshotKey != created.SnapshotKey {
		t.Fatalf("repeat create key = %q, want %q", hit.SnapshotKey, created.SnapshotKey)
	}
	snapB := metricsSnapshot(t, baseB)
	if snapB.Persist.CacheHits != 1 {
		t.Fatalf("cacheHits = %d, want 1", snapB.Persist.CacheHits)
	}
	if pre := snapB.PRAM["preprocess"]; pre.Work != 0 {
		t.Fatalf("cache hit charged preprocessing work %d", pre.Work)
	}
	if !snapB.Persist.Enabled || snapB.Persist.Loads < 2 {
		t.Fatalf("persist metrics: %+v", snapB.Persist)
	}

	// A different pattern set misses and preprocesses.
	other := createDictFull(t, baseB, []string{"zzz", "zyz"})
	if other.Source != "preprocess" {
		t.Fatalf("different patterns source = %q, want preprocess", other.Source)
	}
	if pre := metricsSnapshot(t, baseB).PRAM["preprocess"]; pre.Work == 0 {
		t.Fatal("preprocessing a new pattern set charged no PRAM work")
	}
}

func mustKeys(t *testing.T, srv *Server) []string {
	t.Helper()
	keys, err := srv.Store().Keys()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}

// TestEvictionKeepsSnapshots: LRU eviction bounds resident memory, not the
// disk cache — an evicted dictionary's snapshot file survives, so the entry
// can come back as a cache hit instead of a re-preprocess.
func TestEvictionKeepsSnapshots(t *testing.T) {
	dir := t.TempDir()
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxDicts: 1, MaxInflight: 16, DenseMode: DenseOff, CacheDir: dir,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	first := createDictFull(t, base, []string{"alpha", "beta"})
	second := createDictFull(t, base, []string{"gamma", "delta"})
	if len(second.Evicted) != 1 || second.Evicted[0] != first.ID {
		t.Fatalf("second create evicted %v, want [%s]", second.Evicted, first.ID)
	}
	if n := srv.Registry().Len(); n != 1 {
		t.Fatalf("registry holds %d entries, want 1", n)
	}
	if keys := mustKeys(t, srv); len(keys) != 2 {
		t.Fatalf("disk cache holds %d snapshots after eviction, want 2", len(keys))
	}

	// Re-creating the evicted set is a cache hit — the snapshot outlived the
	// resident entry.
	back := createDictFull(t, base, []string{"alpha", "beta"})
	if back.Source != "cache" {
		t.Fatalf("re-create of evicted dictionary source = %q, want cache", back.Source)
	}
}

// TestCorruptCacheQuarantine: a corrupted snapshot file must not take the
// server down or wedge the cache — the warm start skips and quarantines it,
// the boot succeeds, and the same pattern set can be re-registered (and
// re-cached) afterwards.
func TestCorruptCacheQuarantine(t *testing.T) {
	dir := t.TempDir()
	patterns := persistTestPatterns()

	srvA, baseA, shutdownA := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxDicts: 4, MaxInflight: 16, DenseMode: DenseOff, CacheDir: dir,
	})
	createDictFull(t, baseA, patterns)
	keys := mustKeys(t, srvA)
	if len(keys) != 1 {
		t.Fatalf("expected 1 snapshot, got %d", len(keys))
	}
	if err := shutdownA(); err != nil {
		t.Fatalf("shutdown A: %v", err)
	}

	// Flip bytes in the middle of the snapshot (past the header so the
	// framing parses and the CRC catches it).
	path := filepath.Join(dir, keys[0]+".dmsnap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srvB, baseB, shutdownB := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxDicts: 4, MaxInflight: 16, DenseMode: DenseOff, CacheDir: dir,
	})
	defer func() {
		if err := shutdownB(); err != nil {
			t.Errorf("shutdown B: %v", err)
		}
	}()
	if n := srvB.Registry().Len(); n != 0 {
		t.Fatalf("corrupt snapshot produced %d resident dictionaries, want 0", n)
	}
	snap := metricsSnapshot(t, baseB)
	if snap.Persist.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", snap.Persist.Quarantines)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still under its valid name: %v", err)
	}

	// The server still serves: the same pattern set re-registers (a miss —
	// the quarantined file is invisible to lookups) and writes a fresh
	// snapshot through.
	again := createDictFull(t, baseB, patterns)
	if again.Source != "preprocess" {
		t.Fatalf("re-create after quarantine source = %q, want preprocess", again.Source)
	}
	if got := mustKeys(t, srvB); len(got) != 1 || got[0] != keys[0] {
		t.Fatalf("fresh write-through keys = %v, want [%s]", got, keys[0])
	}
}

// TestSnapshotRestoreEndpoints drives the admin round trip: snapshot a
// resident dictionary by ID, restore it under the returned key as a new
// entry, and check the restored copy matches identically. Error paths: bad
// key encodings and unknown keys.
func TestSnapshotRestoreEndpoints(t *testing.T) {
	dir := t.TempDir()
	text := "xxbananabandanabxnabandxx"

	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxDicts: 4, MaxInflight: 16, DenseMode: DenseOff, CacheDir: dir,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	created := createDictFull(t, base, persistTestPatterns())
	want := matchHits(t, base, created.ID, text)

	status, body := postJSON(t, base+"/v1/dicts/"+created.ID+"/snapshot", map[string]any{})
	if status != http.StatusOK {
		t.Fatalf("snapshot: %d %s", status, body)
	}
	var snapped snapshotResponse
	if err := json.Unmarshal(body, &snapped); err != nil {
		t.Fatal(err)
	}
	if snapped.Bytes <= 0 || len(snapped.Key) != 64 {
		t.Fatalf("snapshot response: %+v", snapped)
	}

	status, body = postJSON(t, base+"/v1/dicts/restore", map[string]any{"key": snapped.Key})
	if status != http.StatusCreated {
		t.Fatalf("restore: %d %s", status, body)
	}
	var restored dictCreateResponse
	if err := json.Unmarshal(body, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Source != "snapshot" {
		t.Fatalf("restored source = %q, want snapshot", restored.Source)
	}
	if restored.ID == created.ID {
		t.Fatal("restore reused the original ID")
	}
	got := matchHits(t, base, restored.ID, text)
	if len(got) != len(want) {
		t.Fatalf("restored match count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restored match[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Error paths.
	if status, body = postJSON(t, base+"/v1/dicts/restore", map[string]any{"key": "zz"}); status != http.StatusBadRequest {
		t.Fatalf("short key: %d %s", status, body)
	}
	bogus := strings.Repeat("ab", 32)
	if status, body = postJSON(t, base+"/v1/dicts/restore", map[string]any{"key": bogus}); status != http.StatusNotFound {
		t.Fatalf("unknown key: %d %s", status, body)
	}
	if status, body = postJSON(t, base+"/v1/dicts/nope/snapshot", map[string]any{}); status != http.StatusNotFound {
		t.Fatalf("snapshot unknown id: %d %s", status, body)
	}
}

// TestSnapshotEndpointsWithoutStore: without -cache-dir the admin endpoints
// refuse with 409 instead of pretending to persist.
func TestSnapshotEndpointsWithoutStore(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, MaxDicts: 4, MaxInflight: 16, DenseMode: DenseOff,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	created := createDictFull(t, base, []string{"ab", "ba"})
	if status, body := postJSON(t, base+"/v1/dicts/"+created.ID+"/snapshot", map[string]any{}); status != http.StatusConflict {
		t.Fatalf("snapshot without store: %d %s", status, body)
	}
	if status, body := postJSON(t, base+"/v1/dicts/restore", map[string]any{"key": strings.Repeat("00", 32)}); status != http.StatusConflict {
		t.Fatalf("restore without store: %d %s", status, body)
	}
	if snap := metricsSnapshot(t, base); snap.Persist.Enabled {
		t.Fatal("persist reported enabled without a cache dir")
	}
}
