//go:build chaos

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestBatchChaosSiblings is the batch fault-isolation acceptance test: with
// a plan panicking every third per-request demux, a concurrent burst through
// a batch=on server must answer every request — the injected ones with 500,
// their batch siblings with 200 and oracle-exact output. One request's
// demux fault never poisons the batch it rode in.
func TestBatchChaosSiblings(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOff,
		BatchMode: BatchOn, BatchMaxRequests: 8, BatchMaxDelay: 5 * time.Millisecond,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id, text, ac := createPlanted(t, base, 31, 1<<13)
	plan := installPlan(t, 9, "batch.demux:every=3")

	const requests = 64
	type result struct {
		status int
		body   []byte
		text   []byte
	}
	results := make([]result, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := text[(i*97)%(len(text)-200) : (i*97)%(len(text)-200)+64+(i%100)]
			st, body := postJSON(t, base+"/v1/dicts/"+id+"/match", map[string]any{"text": string(tx)})
			results[i] = result{st, body, tx}
		}(i)
	}
	wg.Wait()

	ok, failed := 0, 0
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
			var mr matchResponse
			if err := json.Unmarshal(r.body, &mr); err != nil {
				t.Fatalf("request %d: bad JSON %q: %v", i, r.body, err)
			}
			if err := checkMatchResponse(mr, r.text, ac); err != nil {
				t.Fatalf("request %d: sibling of a failed demux served wrong output: %v", i, err)
			}
		case http.StatusInternalServerError:
			failed++
			if !bytes.Contains(r.body, []byte("demux")) && !bytes.Contains(r.body, []byte("matching failed")) {
				t.Fatalf("request %d: 500 with unexpected body %q", i, r.body)
			}
		default:
			t.Fatalf("request %d: unexpected status %d %s", i, r.status, r.body)
		}
	}
	if fired := firedCount(plan, chaos.BatchDemux); fired == 0 {
		t.Fatal("batch.demux never fired")
	}
	if failed == 0 {
		t.Fatalf("no request failed despite %d demux fires", firedCount(plan, chaos.BatchDemux))
	}
	if ok == 0 {
		t.Fatal("every request failed; faults were not contained per request")
	}
	t.Logf("served %d ok (oracle-verified), %d injected failures, %d demux fires",
		ok, failed, firedCount(plan, chaos.BatchDemux))
}

// TestBatchChaosStallDeadline: a stalled batcher timer (batch.stall) must
// not stall the client past its deadline — the queued request answers 503
// with Retry-After while the timer goroutine sleeps.
func TestBatchChaosStallDeadline(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOff,
		BatchMode: BatchOn, BatchMaxRequests: 32, BatchMaxDelay: time.Millisecond,
		RequestTimeout: 50 * time.Millisecond,
	})
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	id, text, _ := createPlanted(t, base, 33, 1<<12)
	plan := installPlan(t, 3, "batch.stall:p=1,delay=300ms")

	body, _ := json.Marshal(map[string]any{"text": string(text[:64])})
	start := time.Now()
	resp, err := http.Post(base+"/v1/dicts/"+id+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if wait := time.Since(start); wait > 250*time.Millisecond {
		t.Fatalf("client waited %v; the stalled timer leaked into the response path", wait)
	}
	// Let the stalled timer goroutine finish so firedCount is stable.
	time.Sleep(350 * time.Millisecond)
	if firedCount(plan, chaos.BatchStall) == 0 {
		t.Fatal("batch.stall never fired")
	}
}
