package server

import "sync/atomic"

// Limiter is a semaphore-based concurrency limiter. A request that cannot
// acquire a slot immediately is shed with 429 rather than queued: under
// saturation the service degrades by rejecting, never by building an
// unbounded backlog (the paper's algorithms are work-optimal per request,
// but only bounded admission keeps the *service* work-optimal under load).
type Limiter struct {
	sem      chan struct{}
	rejected atomic.Int64
}

// NewLimiter returns a limiter admitting at most n concurrent requests
// (n < 1 is clamped to 1).
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// TryAcquire claims a slot if one is free. It never blocks; the caller must
// Release exactly once per successful acquire.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		l.rejected.Add(1)
		return false
	}
}

// Release frees a slot claimed by TryAcquire.
func (l *Limiter) Release() { <-l.sem }

// Inflight returns the number of currently held slots.
func (l *Limiter) Inflight() int { return len(l.sem) }

// Capacity returns the maximum number of concurrent requests.
func (l *Limiter) Capacity() int { return cap(l.sem) }

// Rejected returns the cumulative count of shed requests.
func (l *Limiter) Rejected() int64 { return l.rejected.Load() }
