package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// postRawHdr is postRaw plus request headers: the RPC-resilience tests
// stamp X-Deadline-Ms and X-Cluster-From and assert on response headers.
func postRawHdr(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// splitByOwnership partitions nodes into the owners of id (primary first)
// and the rest (routers: nodes that must proxy requests for id).
func splitByOwnership(t *testing.T, nodes []*clusterNode, id string) (owners, routers []*clusterNode) {
	t.Helper()
	own := nodes[0].srv.cluster.membership.Owners(id)
	for _, op := range own {
		for _, nd := range nodes {
			if nd.name == op.Name {
				owners = append(owners, nd)
			}
		}
	}
	for _, nd := range nodes {
		isOwner := false
		for _, o := range owners {
			if o == nd {
				isOwner = true
			}
		}
		if !isOwner {
			routers = append(routers, nd)
		}
	}
	if len(owners) == 0 || len(routers) == 0 {
		t.Fatalf("placement of %s gave %d owners, %d routers; need both", id, len(owners), len(routers))
	}
	return owners, routers
}

// resilientClusterConfig is the mut used by the tests below: breakers on a
// short fuse plus a retry budget; no hop floor (the deadline test sets its
// own).
func resilientClusterConfig(i int, cfg *Config) {
	cfg.BreakerFailures = 3
	cfg.BreakerCooldown = 250 * time.Millisecond
	cfg.RetryBudgetPct = 10
}

// TestClusterStaleServeWhenAllOwnersDown: a non-owner holding the
// dictionary's bundle in its local cache must answer from the replica —
// marked X-Served-Stale — when every owner is unreachable, instead of
// failing the request with 502. Dictionary IDs are content addresses, so
// the stale answer is byte-correct; "stale" only means unconfirmed.
func TestClusterStaleServeWhenAllOwnersDown(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, resilientClusterConfig)
	_, _, patStrs := clusterFixture(t)
	created := createClusterDict(t, nodes[0].base, patStrs)

	// Warm every node so both owners hold the bundle before the failure.
	for _, nd := range nodes {
		if st, body := postJSON(t, nd.base+"/v1/dicts/"+created.ID+"/match", map[string]any{"text": "warm"}); st != http.StatusOK {
			t.Fatalf("warm via %s: %d %s", nd.name, st, body)
		}
	}
	owners, routers := splitByOwnership(t, nodes, created.ID)
	router := routers[0]

	// Seed the router's local cache with the bundle, as a prior replica
	// stint (or an operator restore) would have. PutBytes validates, so
	// the router can only ever serve exactly what the owner published.
	resp, err := http.Get(owners[0].base + "/v1/dicts/" + created.ID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle fetch: %d %v", resp.StatusCode, err)
	}
	key, ok := keyFromID(created.ID)
	if !ok {
		t.Fatalf("cluster ID %q is not a content address", created.ID)
	}
	if _, err := router.srv.store.PutBytes(key, data); err != nil {
		t.Fatal(err)
	}

	for _, o := range owners {
		if err := o.stop(); err != nil {
			t.Fatalf("owner shutdown: %v", err)
		}
	}

	// The first attempts may race the owners' shutdown; within a couple of
	// tries the router must degrade to the local replica rather than 502.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := postRawHdr(t, router.base+"/v1/dicts/"+created.ID+"/match",
			map[string]any{"text": "stale-serve-probe"}, nil)
		if resp.StatusCode == http.StatusOK {
			if got := resp.Header.Get("X-Served-Stale"); got != "true" {
				t.Fatalf("200 without X-Served-Stale (got %q) — owner answered after shutdown?", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never served stale: %d %s", resp.StatusCode, body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	var m MetricsSnapshot
	if st := getJSON(t, router.base+"/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics: %d", st)
	}
	if m.Resilience.Rpc == nil {
		t.Fatal("cluster node /metrics has no resilience.rpc section")
	}
	if m.Resilience.Rpc.StaleServes == 0 {
		t.Fatal("stale serve happened but staleServes counter is 0")
	}
}

// TestDeadlinePropagationShedsBelowHopFloor: a request arriving with an
// X-Deadline-Ms budget below the hop floor is shed immediately with 503 +
// Retry-After (doing the work would be doomed anyway); a generous budget
// and a malformed header both serve normally.
func TestDeadlinePropagationShedsBelowHopFloor(t *testing.T) {
	nodes := startTestCluster(t, 1, 1, func(i int, cfg *Config) {
		cfg.HopFloor = 50 * time.Millisecond
	})
	nd := nodes[0]
	_, _, patStrs := clusterFixture(t)
	created := createClusterDict(t, nd.base, patStrs)
	matchURL := nd.base + "/v1/dicts/" + created.ID + "/match"
	reqBody := map[string]any{"text": "deadline"}

	cases := []struct {
		name   string
		header string
		want   int
	}{
		{"below floor sheds", "1", http.StatusServiceUnavailable},
		{"ample budget serves", "30000", http.StatusOK},
		{"malformed header ignored", "soon-ish", http.StatusOK},
		{"no header serves", "", http.StatusOK},
	}
	sheds := 0
	for _, tc := range cases {
		hdr := map[string]string{}
		if tc.header != "" {
			hdr["X-Deadline-Ms"] = tc.header
		}
		resp, body := postRawHdr(t, matchURL, reqBody, hdr)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: got %d %s, want %d", tc.name, resp.StatusCode, body, tc.want)
		}
		if tc.want == http.StatusServiceUnavailable {
			sheds++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("%s: shed without Retry-After", tc.name)
			}
		}
	}

	var m MetricsSnapshot
	getJSON(t, nd.base+"/metrics", &m)
	if m.Resilience.Rpc == nil || m.Resilience.Rpc.DeadlineSheds != int64(sheds) {
		t.Fatalf("deadlineSheds: %+v, want %d", m.Resilience.Rpc, sheds)
	}
}

// TestClusterSingleBounceGuard: the X-Cluster-From loop guard must hold
// under concurrent hedged traffic. A routed request arriving at a
// non-owner is served locally — never forwarded a second hop — both while
// the owners are alive (the node pulls the bundle and answers itself) and
// after both owners die (a clean local 404 or gateway error, never a
// proxy loop).
func TestClusterSingleBounceGuard(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, resilientClusterConfig)
	_, _, patStrs := clusterFixture(t)
	created := createClusterDict(t, nodes[0].base, patStrs)
	owners, routers := splitByOwnership(t, nodes, created.ID)
	router := routers[0]

	// Warm the owners only: the router must start with no local copy.
	for _, o := range owners {
		if st, body := postJSON(t, o.base+"/v1/dicts/"+created.ID+"/match", map[string]any{"text": "warm"}); st != http.StatusOK {
			t.Fatalf("warm via %s: %d %s", o.name, st, body)
		}
	}

	proxied := func(nd *clusterNode) int64 {
		var m MetricsSnapshot
		getJSON(t, nd.base+"/metrics", &m)
		return m.Cluster.Proxied
	}

	const concurrency = 8
	burst := func(url string, hdr map[string]string, wantStatus func(int) bool, label string) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, concurrency)
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, body := postRawHdr(t, url, map[string]any{"text": "bounce"}, hdr)
				if !wantStatus(resp.StatusCode) {
					errs <- fmt.Errorf("%s: got %d %s", label, resp.StatusCode, body)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	is200 := func(c int) bool { return c == http.StatusOK }
	matchURL := router.base + "/v1/dicts/" + created.ID + "/match"

	// Phase A, owners alive: guarded requests (header present, as if a
	// peer already routed them here) are served locally via a replication
	// pull — the router's proxied counter must not move. Unguarded
	// requests proxy normally.
	proxiedBefore := proxied(router)
	burst(matchURL, map[string]string{clusterFromHeader: owners[0].name}, is200, "guarded, owners alive")
	if got := proxied(router); got != proxiedBefore {
		t.Fatalf("guarded requests proxied a second hop: proxied %d -> %d", proxiedBefore, got)
	}
	burst(matchURL, nil, is200, "unguarded, owners alive")

	// Phase B: a second dictionary the router2 node has never held, then
	// both of its owners die. Guarded requests must answer a local 404
	// (the pull has nowhere to go, and forwarding would loop); unguarded
	// requests must fail clean with 502/503 — not hang, not bounce.
	pats2 := make([]string, len(patStrs))
	for i, p := range patStrs {
		pats2[i] = p + "!"
	}
	created2 := createClusterDict(t, nodes[0].base, pats2)
	owners2, routers2 := splitByOwnership(t, nodes, created2.ID)
	router2 := routers2[0]
	for _, o := range owners2 {
		if st, body := postJSON(t, o.base+"/v1/dicts/"+created2.ID+"/match", map[string]any{"text": "warm"}); st != http.StatusOK {
			t.Fatalf("warm via %s: %d %s", o.name, st, body)
		}
	}
	for _, o := range owners2 {
		if err := o.stop(); err != nil {
			t.Fatalf("owner shutdown: %v", err)
		}
	}
	match2URL := router2.base + "/v1/dicts/" + created2.ID + "/match"
	burst(match2URL, map[string]string{clusterFromHeader: owners2[0].name},
		func(c int) bool { return c == http.StatusNotFound }, "guarded, owners down")
	burst(match2URL, nil, func(c int) bool {
		return c == http.StatusBadGateway || c == http.StatusServiceUnavailable
	}, "unguarded, owners down")
}

// TestClusterHedgingDoesNotTripBreakers is the regression for the
// hedging/breaker interaction: hedged losers are canceled by the hedger
// itself, and those cancellations must count for nothing — every failure
// a peer accrues has to be an affirmative slow strike (silence at the
// hedge deadline), never the echo of our own cancel. Otherwise routine
// hedging would trip breakers against perfectly healthy peers.
func TestClusterHedgingDoesNotTripBreakers(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, func(i int, cfg *Config) {
		cfg.BreakerFailures = 50 // high fuse: this test audits counters, not trips
		cfg.RPCFaultAdmin = true
		cfg.ClusterHedgeAfter = 5 * time.Millisecond
	})
	_, _, patStrs := clusterFixture(t)
	created := createClusterDict(t, nodes[0].base, patStrs)
	owners, routers := splitByOwnership(t, nodes, created.ID)
	router := routers[0]
	for _, o := range owners {
		if st, body := postJSON(t, o.base+"/v1/dicts/"+created.ID+"/match", map[string]any{"text": "warm"}); st != http.StatusOK {
			t.Fatalf("warm via %s: %d %s", o.name, st, body)
		}
	}

	// Delay every proxied attempt against the primary owner far past the
	// hedge budget: each request hedges to the secondary, wins there, and
	// cancels the delayed loser mid-flight.
	primary := owners[0].name
	plan := fmt.Sprintf("rpc.delay.%s:p=1,delay=80ms", primary)
	if st, body := postJSON(t, router.base+"/v1/rpcfaults", map[string]any{"seed": 7, "plan": plan}); st != http.StatusOK {
		t.Fatalf("install fault plan: %d %s", st, body)
	}

	const requests = 10
	for i := 0; i < requests; i++ {
		if st, body := postJSON(t, router.base+"/v1/dicts/"+created.ID+"/match", map[string]any{"text": "hedge me"}); st != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, st, body)
		}
	}

	var m MetricsSnapshot
	if st := getJSON(t, router.base+"/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics: %d", st)
	}
	rpc := m.Resilience.Rpc
	if rpc == nil {
		t.Fatal("no resilience.rpc metrics section")
	}
	if rpc.SlowStrikes < requests {
		t.Fatalf("slowStrikes = %d, want >= %d (primary was silent past the hedge budget every request)", rpc.SlowStrikes, requests)
	}
	// The load-bearing assertion: total peer failures equal total slow
	// strikes. Every canceled loser also died of context.Canceled — if
	// cancellation were (wrongly) charged as a peer failure, failures
	// would exceed strikes here.
	var failures int64
	for name, ps := range rpc.Peers {
		failures += ps.Failures
		if ps.Opens != 0 || ps.State != "closed" {
			t.Fatalf("peer %s breaker disturbed: %+v", name, ps)
		}
	}
	if failures != rpc.SlowStrikes {
		t.Fatalf("peer failures %d != slow strikes %d — hedge cancellations were charged as peer failures", failures, rpc.SlowStrikes)
	}
	if m.Cluster.Hedged == 0 {
		t.Fatal("no hedged requests recorded — the fault plan did not slow the primary")
	}
}

// TestClusterNodeShutdownStopsProber: a full server stop in cluster mode
// halts the background prober — its view of the world must never change
// again (the cluster package holds the 50-cycle goroutine-leak test; this
// guards the Server.Close wiring end of it).
func TestClusterNodeShutdownStopsProber(t *testing.T) {
	nodes := startTestCluster(t, 2, 2, nil)
	h := nodes[0].srv.cluster.health
	if err := nodes[1].stop(); err != nil {
		t.Fatalf("peer shutdown: %v", err)
	}
	if err := nodes[0].stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Node 0's prober is stopped; even with its peer now dead (which a
	// live prober would notice within the 50ms interval) the recorded
	// state must stay frozen across several intervals.
	transitions := h.Transitions()
	time.Sleep(200 * time.Millisecond)
	if got := h.Transitions(); got != transitions {
		t.Fatalf("prober still running after Server.Close: transitions %d -> %d", transitions, got)
	}
}
