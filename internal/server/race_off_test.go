//go:build !race

package server

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
