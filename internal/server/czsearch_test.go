package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/czsearch"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/textgen"
)

// compressPlanted compresses text into an LZ1R1 container.
func compressPlanted(t *testing.T, text []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := lz.EncodeStream(&buf, lz.Compress(pram.NewSequential(), text)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// createCzDict registers a planted dictionary and returns its ID, the
// planted text, and the text's LZ1R1 container.
func createCzDict(t *testing.T, base string, seed uint64) (string, []byte, []byte) {
	t.Helper()
	gen := textgen.New(seed)
	text, patterns := gen.PlantedDictionary(1<<16, 16, 6, 97, 4)
	strs := make([]string, len(patterns))
	for i, p := range patterns {
		strs[i] = string(p)
	}
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": strs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created.ID, text, compressPlanted(t, text)
}

// oracleHits fetches /v1/dicts/{id}/match for text — the decompress-then-
// match reference every compressed request must equal.
func oracleHits(t *testing.T, base, id string, text []byte) []matchHit {
	t.Helper()
	status, body := postJSON(t, base+"/v1/dicts/"+id+"/match",
		map[string]string{"textB64": base64.StdEncoding.EncodeToString(text)})
	if status != http.StatusOK {
		t.Fatalf("match: %d %s", status, body)
	}
	var mr matchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	return mr.Hits
}

// TestMatchCompressedBufferedEquivalence: the buffered endpoint reports
// exactly the hits /match reports on the expanded text, serves from the
// czsearch engine when the automaton is compiled, and the accounting
// invariant and /metrics czsearch section hold up.
func TestMatchCompressedBufferedEquivalence(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOn,
	})
	id, text, container := createCzDict(t, base, 41)
	want := oracleHits(t, base, id, text)

	for req := 0; req < 3; req++ {
		status, body := postJSON(t, base+"/v1/dicts/"+id+"/match/compressed/buffered",
			map[string]string{"dataB64": base64.StdEncoding.EncodeToString(container)})
		if status != http.StatusOK {
			t.Fatalf("request %d: %d %s", req, status, body)
		}
		var mr matchCompressedResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Engine != engineCz {
			t.Fatalf("request %d served by %q, want %q", req, mr.Engine, engineCz)
		}
		if mr.N != len(text) || mr.Matched != len(want) || len(mr.Hits) != len(want) {
			t.Fatalf("request %d: n=%d matched=%d, oracle has %d hits over %d bytes",
				req, mr.N, mr.Matched, len(want), len(text))
		}
		for i, h := range mr.Hits {
			if h != want[i] {
				t.Fatalf("request %d: hit %d = %+v, oracle %+v", req, i, h, want[i])
			}
		}
		st := mr.Stats
		if st.BytesRepresented != int64(len(text)) {
			t.Fatalf("bytesRepresented = %d, want %d", st.BytesRepresented, len(text))
		}
		if st.BytesTouched+st.SyncSkipped+st.MemoBytes != st.BytesRepresented {
			t.Fatalf("accounting: %d+%d+%d != %d",
				st.BytesTouched, st.SyncSkipped, st.MemoBytes, st.BytesRepresented)
		}
		if st.BytesTouched >= st.BytesRepresented {
			t.Fatalf("scanner touched every byte (%d of %d) — no compressed-domain savings",
				st.BytesTouched, st.BytesRepresented)
		}
	}

	var snap MetricsSnapshot
	if code := getJSON(t, base+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	cz := snap.Cz
	if cz.Served != 3 || cz.Fallback != 0 {
		t.Fatalf("cz served=%d fallback=%d, want 3/0", cz.Served, cz.Fallback)
	}
	if cz.Tokens == 0 || cz.BytesRepresented != 3*int64(len(text)) || cz.BytesTouched >= cz.BytesRepresented {
		t.Fatalf("cz accounting counters: %+v", cz)
	}
	if cz.VerifyPass < 1 || cz.VerifyFail != 0 {
		t.Fatalf("cz verify: pass=%d fail=%d", cz.VerifyPass, cz.VerifyFail)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// ndjsonEvents posts a raw container to the streaming endpoint and returns
// the event lines plus the parsed summary (nil if the stream ended in an
// error line or no trailer at all).
type czStreamSummary struct {
	N      int64          `json:"n"`
	Engine string         `json:"engine"`
	Stats  czsearch.Stats `json:"stats"`
}

func postCompressedStream(t *testing.T, url string, container []byte) (int, []matchHit, *czStreamSummary, string) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(container))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, nil, nil, string(body)
	}
	var hits []matchHit
	var summary *czStreamSummary
	errLine := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var obj struct {
			Pos     *int             `json:"pos"`
			Pattern int              `json:"pattern"`
			Length  int              `json:"length"`
			Summary *czStreamSummary `json:"summary"`
			Error   *string          `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case obj.Pos != nil:
			hits = append(hits, matchHit{Pos: *obj.Pos, Pattern: obj.Pattern, Length: obj.Length})
		case obj.Summary != nil:
			summary = obj.Summary
		case obj.Error != nil:
			errLine = *obj.Error
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, hits, summary, errLine
}

// TestMatchCompressedStreaming: the NDJSON route emits the oracle's events
// in position order and closes with a summary naming the czsearch engine.
func TestMatchCompressedStreaming(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOn,
	})
	id, text, container := createCzDict(t, base, 43)
	want := oracleHits(t, base, id, text)

	status, hits, summary, errLine := postCompressedStream(t, base+"/v1/dicts/"+id+"/match/compressed", container)
	if status != http.StatusOK {
		t.Fatalf("stream: %d %s", status, errLine)
	}
	if errLine != "" {
		t.Fatalf("stream error: %s", errLine)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary trailer")
	}
	if summary.Engine != engineCz || summary.N != int64(len(text)) {
		t.Fatalf("summary = %+v", summary)
	}
	st := summary.Stats
	if st.BytesTouched+st.SyncSkipped+st.MemoBytes != st.BytesRepresented {
		t.Fatalf("accounting: %d+%d+%d != %d",
			st.BytesTouched, st.SyncSkipped, st.MemoBytes, st.BytesRepresented)
	}
	if len(hits) != len(want) {
		t.Fatalf("%d events, oracle has %d", len(hits), len(want))
	}
	for i, h := range hits {
		if h != want[i] {
			t.Fatalf("event %d = %+v, oracle %+v", i, h, want[i])
		}
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestMatchCompressedFallback: with dense off, both compressed routes still
// answer — decompress-and-tree-walk, engine "tree", every byte touched —
// and the fallback counter records it.
func TestMatchCompressedFallback(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 2, DenseMode: DenseOff,
	})
	id, text, container := createCzDict(t, base, 47)
	want := oracleHits(t, base, id, text)

	status, body := postJSON(t, base+"/v1/dicts/"+id+"/match/compressed/buffered",
		map[string]string{"dataB64": base64.StdEncoding.EncodeToString(container)})
	if status != http.StatusOK {
		t.Fatalf("buffered: %d %s", status, body)
	}
	var mr matchCompressedResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Engine != engineTree {
		t.Fatalf("engine = %q with dense off, want %q", mr.Engine, engineTree)
	}
	if mr.Matched != len(want) {
		t.Fatalf("matched %d, oracle has %d", mr.Matched, len(want))
	}
	for i, h := range mr.Hits {
		if h.Pos != want[i].Pos || h.Length != want[i].Length {
			t.Fatalf("hit %d = %+v, oracle %+v", i, h, want[i])
		}
	}
	if mr.Stats.BytesTouched != mr.Stats.BytesRepresented {
		t.Fatalf("fallback claims compressed-domain savings: touched %d of %d",
			mr.Stats.BytesTouched, mr.Stats.BytesRepresented)
	}

	status, hits, summary, errLine := postCompressedStream(t, base+"/v1/dicts/"+id+"/match/compressed", container)
	if status != http.StatusOK || errLine != "" || summary == nil {
		t.Fatalf("stream: status=%d err=%q summary=%v", status, errLine, summary)
	}
	if summary.Engine != engineTree || len(hits) != len(want) {
		t.Fatalf("stream fallback: engine=%q events=%d want=%d", summary.Engine, len(hits), len(want))
	}

	if n := srv.Metrics().czFallback.Load(); n != 2 {
		t.Fatalf("czFallback = %d, want 2", n)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestMatchCompressedRejects pins the error contract: wrong format is 422
// with a typed message (not a panic, not a hang), bad base64 is 400, an
// unknown dictionary 404, and a container whose header promises more than
// MaxExpandBytes is 413 on both routes.
func TestMatchCompressedRejects(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOn, MaxExpandBytes: 4 << 10,
	})
	gen := textgen.New(7)
	text, patterns := gen.PlantedDictionary(1<<12, 8, 5, 31, 4)
	strs := make([]string, len(patterns))
	for i, p := range patterns {
		strs[i] = string(p)
	}
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": strs})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	id := created.ID
	_ = text

	// Wrong format: both routes answer 422 and mention LZ1R1.
	notLZ := []byte("this is plain text, not a container")
	status, body = postJSON(t, base+"/v1/dicts/"+id+"/match/compressed/buffered",
		map[string]string{"dataB64": base64.StdEncoding.EncodeToString(notLZ)})
	if status != http.StatusUnprocessableEntity || !strings.Contains(string(body), "LZ1R1") {
		t.Fatalf("buffered non-container: %d %s", status, body)
	}
	status, _, _, errBody := postCompressedStream(t, base+"/v1/dicts/"+id+"/match/compressed", notLZ)
	if status != http.StatusUnprocessableEntity || !strings.Contains(errBody, "LZ1R1") {
		t.Fatalf("stream non-container: %d %s", status, errBody)
	}

	// Bad base64 is a 400, unknown dictionary a 404.
	status, body = postJSON(t, base+"/v1/dicts/"+id+"/match/compressed/buffered",
		map[string]string{"dataB64": "!!!"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad base64: %d %s", status, body)
	}
	status, body = postJSON(t, base+"/v1/dicts/nope/match/compressed/buffered",
		map[string]string{"dataB64": ""})
	if status != http.StatusNotFound {
		t.Fatalf("unknown dict: %d %s", status, body)
	}

	// Oversized represented length: 8 KiB of text against a 4 KiB cap.
	big := compressPlanted(t, bytes.Repeat([]byte("ab"), 4<<10))
	status, body = postJSON(t, base+"/v1/dicts/"+id+"/match/compressed/buffered",
		map[string]string{"dataB64": base64.StdEncoding.EncodeToString(big)})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized buffered: %d %s", status, body)
	}
	status, _, _, errBody = postCompressedStream(t, base+"/v1/dicts/"+id+"/match/compressed", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized stream: %d %s", status, errBody)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}
