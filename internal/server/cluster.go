package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/persist"
	"repro/internal/resilience"
)

// Pull retry policy: a few budget-gated attempts with jittered backoff.
const (
	pullAttempts    = 3
	pullBackoffBase = 25 * time.Millisecond
	pullBackoffMax  = 500 * time.Millisecond
)

// Cluster mode (DESIGN.md §15): several matchd processes share one static
// peer table, dictionary IDs are content addresses (persist.KeyFor hex)
// placed on R owners by the internal/cluster consistent-hash ring, and any
// node accepts any request — a non-owner routes match/parse traffic to the
// owners with hedging, an owner that is missing the dictionary pulls the
// DMSNAP bundle from a peer and restores it (zero re-preprocessing: the
// PRAM preprocess ledger does not move on a replication pull).

// clusterFromHeader marks a request as already routed once. A node seeing
// it serves locally no matter what, so a stale ring view (or a bug) can
// bounce a request at most once instead of looping.
const clusterFromHeader = "X-Cluster-From"

// clusterState is the per-server cluster runtime.
type clusterState struct {
	membership *cluster.Membership
	health     *cluster.Health
	hedger     *cluster.Hedger
	pool       *resilience.Pool // shared outbound transport: breakers, budget, faults
	client     *http.Client     // proxy/replication client over pool; no global timeout (ctx-bound)
	redirect   bool

	// Replication-pull singleflight: one fetch per missing id no matter how
	// many requests arrive for it at once.
	pullMu sync.Mutex
	pulls  map[string]*replicaPull
}

type replicaPull struct {
	done chan struct{}
	err  error
}

// probeClientTimeout bounds one health probe; it doubles as the ceiling a
// black-holed probe waits before counting as a breaker failure.
const probeClientTimeout = 2 * time.Second

// newClusterState wires membership, the resilience pool every outbound
// byte flows through, the /readyz prober (probing through the pool, so
// probe outcomes feed the breakers), and the hedged proxy client, and
// starts probing.
func newClusterState(cfg *Config, mt *Metrics) (*clusterState, error) {
	m, err := cluster.NewMembership(cfg.ClusterPeers, cfg.ClusterSelf, 0, cfg.ClusterReplicas)
	if err != nil {
		return nil, err
	}
	others := m.Others()
	rpeers := make([]resilience.Peer, len(others))
	for i, p := range others {
		rpeers[i] = resilience.Peer{Name: p.Name, URL: p.URL}
	}
	pool := resilience.NewPool(resilience.Config{
		BreakerFailures: cfg.BreakerFailures,
		BreakerCooldown: cfg.BreakerCooldown,
		RetryBudgetPct:  cfg.RetryBudgetPct,
		HopFloor:        cfg.HopFloor,
	}, rpeers)
	if cfg.RPCChaosPlan != "" {
		if err := pool.SetFaults(cfg.RPCChaosSeed, cfg.RPCChaosPlan); err != nil {
			return nil, err
		}
	}
	c := &clusterState{
		membership: m,
		health:     cluster.NewHealth(others, &http.Client{Transport: pool, Timeout: probeClientTimeout}, cfg.ClusterProbeInterval),
		pool:       pool,
		client:     pool.Client(),
		redirect:   cfg.ClusterRedirect,
		pulls:      make(map[string]*replicaPull),
	}
	c.hedger = &cluster.Hedger{
		Client: c.client,
		After:  cfg.ClusterHedgeAfter,
		OnError: func(p cluster.Peer, err error) {
			// Breaker fast-fails and hop-floor sheds are this node's own
			// refusals — no evidence about the peer, so no MarkDown.
			if !resilience.IsLocal(err) {
				c.health.MarkDown(p.Name)
			}
		},
		OnSlow: func(p cluster.Peer) {
			c.pool.RecordSlow(p.Name)
		},
	}
	c.health.Start()
	return c, nil
}

// Cluster reports whether the server runs in cluster mode (exported for
// tests/bench).
func (s *Server) Cluster() bool { return s.cluster != nil }

// Close releases background resources (the cluster health prober). Safe on
// a non-cluster server and safe to call more than once.
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.health.Close()
	}
}

// keyFromID recovers the persist.Key a cluster dictionary ID encodes.
func keyFromID(id string) (persist.Key, bool) {
	raw, err := hex.DecodeString(id)
	if err != nil || len(raw) != len(persist.Key{}) {
		return persist.Key{}, false
	}
	var k persist.Key
	copy(k[:], raw)
	return k, true
}

// clusterDict is the routing middleware for dictionary-scoped routes. An
// owner (or a node answering an already-routed request) serves locally,
// pulling the dictionary from a peer first if it is not resident; a
// non-owner proxies to the owners with hedging, or 307-redirects when
// configured. streaming routes proxy to a single owner — their bodies are
// unbounded and cannot be replayed for a hedge.
func (s *Server) clusterDict(streaming bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c := s.cluster
		if c == nil {
			h(w, r)
			return
		}
		id := r.PathValue("id")
		if r.Header.Get(clusterFromHeader) != "" || c.membership.OwnsSelf(id) {
			if !s.reg.Has(id) {
				if err := s.ensureReplica(r.Context(), id); err != nil {
					// The handler's own lookup produces the 404; just record
					// why the pull could not fill the gap.
					s.cfg.Log.Printf("cluster: replication pull of %s failed: %v", id, err)
				}
			}
			h(w, r)
			return
		}
		s.routeAway(w, r, id, streaming, h)
	}
}

// healthyOwners returns the owner peers for id, primary first, with peers
// the prober considers degraded or down — or whose circuit breaker is
// open — filtered out. If the filter empties the list the unfiltered
// owners are returned — trying a suspect peer beats refusing the request
// outright (and the breaker will fast-fail the truly hopeless attempts).
func (c *clusterState) healthyOwners(id string) []cluster.Peer {
	owners := c.membership.Owners(id)
	kept := make([]cluster.Peer, 0, len(owners))
	for _, p := range owners {
		if p.Name == c.membership.Self {
			continue
		}
		switch c.health.State(p.Name) {
		case cluster.StateDegraded, cluster.StateDown:
			continue
		}
		if c.pool.PeerOpen(p.Name) {
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) > 0 {
		return kept
	}
	// Everyone looks sick: fall back to the full owner list (minus self).
	kept = kept[:0]
	for _, p := range owners {
		if p.Name != c.membership.Self {
			kept = append(kept, p)
		}
	}
	return kept
}

// routeAway sends a request this node does not own to the owners. h is the
// local handler, kept at hand for the stale-serving fallback: when no
// owner is reachable but the dictionary is locally restorable, answering
// from the replica beats a 502.
func (s *Server) routeAway(w http.ResponseWriter, r *http.Request, id string, streaming bool, h http.HandlerFunc) {
	c := s.cluster
	owners := c.healthyOwners(id)
	if len(owners) == 0 {
		if s.tryServeStale(w, r, id, nil, h) {
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no reachable owner for dictionary %q", id)
		return
	}
	if c.redirect && !streaming {
		s.metrics.clusterRedirected.Add(1)
		// 307 preserves method and body; the client re-sends to the owner.
		http.Redirect(w, r, owners[0].URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
		return
	}
	if streaming {
		s.proxyStream(w, r, id, owners, h)
		return
	}
	s.proxyHedged(w, r, id, owners, h)
}

// proxyHeader clones the forwardable request headers and stamps the loop
// guard. The deadline header is dropped: the pool transport re-stamps it
// from the live proxy context at send time, which is how the time this hop
// already spent gets subtracted from the budget.
func (c *clusterState) proxyHeader(h http.Header) http.Header {
	out := h.Clone()
	out.Del("Connection")
	out.Del("Content-Length") // recomputed per attempt
	out.Del(resilience.DeadlineHeader)
	out.Set(clusterFromHeader, c.membership.Self)
	return out
}

// proxyHedged forwards a buffered request to the owner list under the
// hedger: first owner immediately, the next after the latency budget, first
// acceptable answer wins and the losers are cancelled. When every owner is
// unreachable the stale-serving fallback gets a chance before the 502.
func (s *Server) proxyHedged(w http.ResponseWriter, r *http.Request, id string, owners []cluster.Peer, h http.HandlerFunc) {
	c := s.cluster
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBodyBytes)
		return
	}
	hdr := c.proxyHeader(r.Header)
	res, err := c.hedger.Do(r.Context(), owners, func(ctx context.Context, p cluster.Peer) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, r.Method, p.URL+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header = hdr.Clone()
		return req, nil
	})
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		if s.tryServeStale(w, r, id, io.NopCloser(bytes.NewReader(body)), h) {
			return
		}
		writeError(w, http.StatusBadGateway, "all owners of %q unreachable: %v", id, err)
		return
	}
	defer res.Release()
	s.metrics.clusterProxied.Add(1)
	if res.Hedged {
		s.metrics.clusterHedged.Add(1)
		if res.Index > 0 {
			s.metrics.clusterHedgeWon.Add(1)
		}
	}
	copyProxyResponse(w, res.Resp)
}

// streamReplayLimit bounds how much of a streaming request body is
// buffered for owner failover. A dial-time failure consumes nothing, so
// in practice failover only needs the bytes the transport buffered before
// the connection died; beyond the limit the stream is committed to its
// owner and fails loudly like before.
const streamReplayLimit = 1 << 20

// proxyStream forwards a streaming request to an owner, relaying the
// response incrementally (flush per chunk, like the local streaming
// handlers). Bodies are unbounded, so hedging is off; instead the request
// body is teed into a bounded replay buffer and a send that dies before
// any response byte reaches the client fails over to the next owner —
// during a partition the first owner often refuses instantly, and the
// stream must survive that.
func (s *Server) proxyStream(w http.ResponseWriter, r *http.Request, id string, owners []cluster.Peer, h http.HandlerFunc) {
	c := s.cluster
	rb := newReplayBody(r.Body, streamReplayLimit)
	var lastOwner cluster.Peer
	var lastErr error
	for i, owner := range owners {
		if i > 0 {
			if !rb.rewind() {
				break // upstream consumed past the buffer: cannot replay
			}
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, owner.URL+r.URL.RequestURI(), io.NopCloser(rb))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "proxy: %v", err)
			return
		}
		req.Header = c.proxyHeader(r.Header)
		resp, err := c.client.Do(req)
		if err != nil {
			lastOwner, lastErr = owner, err
			if !resilience.IsLocal(err) {
				c.health.MarkDown(owner.Name)
			}
			if r.Context().Err() != nil {
				writeCtxError(w, r.Context().Err())
				return
			}
			continue
		}
		defer resp.Body.Close()
		s.metrics.clusterProxied.Add(1)
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		rc := http.NewResponseController(w)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				_ = rc.Flush()
			}
			if rerr == io.EOF {
				return
			}
			if rerr != nil {
				// The owner died mid-stream. The status line is long gone, so
				// the only honest signal left is a broken transfer: abort the
				// connection rather than let the truncated prefix read as a
				// complete stream. (The NDJSON contract is trailer-or-error;
				// a clean EOF here would forge a silent truncation.)
				c.health.MarkDown(owner.Name)
				panic(http.ErrAbortHandler)
			}
		}
	}
	// Every owner failed before a single response byte was sent.
	if rb.rewind() && s.tryServeStale(w, r, id, io.NopCloser(rb), h) {
		return
	}
	writeError(w, http.StatusBadGateway, "owner %s unreachable: %v", lastOwner.Name, lastErr)
}

// replayBody tees a request body into a bounded buffer so a failed proxy
// attempt can be replayed against another owner. Once more than limit
// bytes have been consumed the buffer is abandoned and rewind reports
// false.
type replayBody struct {
	mu       sync.Mutex // a failed attempt's transport may still read asynchronously
	src      io.Reader
	buf      []byte
	limit    int
	pos      int // next unread offset in buf during replay
	overflow bool
}

func newReplayBody(src io.Reader, limit int) *replayBody {
	return &replayBody{src: src, limit: limit}
}

func (b *replayBody) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pos < len(b.buf) {
		n := copy(p, b.buf[b.pos:])
		b.pos += n
		return n, nil
	}
	n, err := b.src.Read(p)
	if n > 0 {
		if !b.overflow && len(b.buf)+n <= b.limit {
			b.buf = append(b.buf, p[:n]...)
			b.pos = len(b.buf)
		} else {
			b.overflow = true
		}
	}
	return n, err
}

// rewind resets the body to its beginning for another attempt; it reports
// false when bytes beyond the buffer were already consumed.
func (b *replayBody) rewind() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.overflow {
		return false
	}
	b.pos = 0
	return true
}

// copyProxyResponse relays a buffered upstream response to the client.
func copyProxyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// tryServeStale is the graceful-degradation fallback: every owner of id is
// unreachable, but if this node holds a replica (or can restore one from
// its local DMSNAP cache) the data is as good as the owner's — dictionary
// ids are content addresses, so "stale" means served without owner
// confirmation, not divergent bytes. The response is marked with
// X-Served-Stale so clients and dashboards can see degradation happening.
// body, when non-nil, replaces the (already consumed) request body before
// the local handler runs. Returns false when nothing local can answer.
func (s *Server) tryServeStale(w http.ResponseWriter, r *http.Request, id string, body io.ReadCloser, h http.HandlerFunc) bool {
	if s.cluster == nil || h == nil {
		return false
	}
	if !s.reg.Has(id) {
		key, isKey := keyFromID(id)
		if !isKey || s.store == nil {
			return false
		}
		start := time.Now()
		d, aut, _, err := s.store.GetBundle(key)
		if err != nil {
			return false
		}
		s.metrics.recordLoad(time.Since(start))
		e, _ := s.reg.RegisterPreparedDenseID(id, d, aut, "cache", id, time.Since(start).Nanoseconds())
		s.armDense(e, s.denseUpgradeFunc(e, key))
	}
	s.metrics.staleServes.Add(1)
	s.cfg.Log.Printf("cluster: serving %s stale — no reachable owner", id)
	w.Header().Set("X-Served-Stale", "true")
	if body != nil {
		r.Body = body
	}
	h(w, r)
	return true
}

// ensureReplica makes dictionary id resident, pulling its snapshot bundle
// from a peer (or the local store) if needed. Concurrent callers for the
// same id share one pull.
func (s *Server) ensureReplica(ctx context.Context, id string) error {
	c := s.cluster
	c.pullMu.Lock()
	if s.reg.Has(id) {
		c.pullMu.Unlock()
		return nil
	}
	if p, ok := c.pulls[id]; ok {
		c.pullMu.Unlock()
		select {
		case <-p.done:
			return p.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	p := &replicaPull{done: make(chan struct{})}
	c.pulls[id] = p
	c.pullMu.Unlock()

	p.err = s.pullReplica(ctx, id)
	close(p.done)
	c.pullMu.Lock()
	delete(c.pulls, id)
	c.pullMu.Unlock()
	return p.err
}

// pullReplica restores id from the cheapest source that has it: the local
// snapshot store (a warm restart already paid the disk write), then each
// owner peer, then every remaining peer. Either way the restore is a table
// read — no §3 preprocessing runs on a replica.
func (s *Server) pullReplica(ctx context.Context, id string) error {
	c := s.cluster
	key, isKey := keyFromID(id)

	if isKey && s.store != nil {
		start := time.Now()
		if d, aut, _, err := s.store.GetBundle(key); err == nil {
			s.metrics.recordLoad(time.Since(start))
			e, _ := s.reg.RegisterPreparedDenseID(id, d, aut, "cache", id, time.Since(start).Nanoseconds())
			s.armDense(e, s.denseUpgradeFunc(e, key))
			return nil
		}
	}

	// Owners first (they are supposed to have it), then everyone else —
	// a node that just restarted empty may find the bundle only on a
	// non-owner that replicated it earlier. Down peers are skipped.
	candidates := c.membership.Owners(id)
	for _, p := range c.membership.Others() {
		dup := false
		for _, o := range candidates {
			if o.Name == p.Name {
				dup = true
				break
			}
		}
		if !dup {
			candidates = append(candidates, p)
		}
	}
	var lastErr error = persist.ErrNotFound
	seed := fnv.New64a()
	_, _ = seed.Write([]byte(id))
	for _, p := range candidates {
		if p.Name == c.membership.Self || c.health.State(p.Name) == cluster.StateDown || c.pool.PeerOpen(p.Name) {
			continue
		}
		// Pulls are idempotent GETs of immutable content — the one outbound
		// class worth retrying, gated by the cluster-wide budget so a
		// partition cannot turn pull pressure into a retry storm.
		var data []byte
		var d *core.Dictionary
		var aut *dense.Automaton
		var err error
		start := time.Now()
		for attempt := 1; ; attempt++ {
			data, d, aut, err = persist.FetchBundle(ctx, c.client, p.URL, id, 0)
			if err == nil || ctx.Err() != nil {
				break
			}
			if attempt >= pullAttempts || resilience.IsLocal(err) ||
				!persist.RetryableFetch(err) || !c.pool.RetryAllowed() {
				break
			}
			t := time.NewTimer(resilience.Backoff(attempt, pullBackoffBase, pullBackoffMax, seed.Sum64()))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		s.metrics.clusterReplPulls.Add(1)
		s.metrics.clusterReplBytes.Add(int64(len(data)))
		s.metrics.recordLoad(time.Since(start))
		if isKey && s.store != nil {
			if n, err := s.store.PutBytes(key, data); err != nil {
				s.cfg.Log.Printf("cluster: persisting pulled bundle %s failed: %v", id, err)
			} else {
				s.metrics.recordSave(n)
			}
		}
		e, _ := s.reg.RegisterPreparedDenseID(id, d, aut, "replica", id, time.Since(start).Nanoseconds())
		if isKey {
			s.armDense(e, s.denseUpgradeFunc(e, key))
		} else {
			s.armDense(e, nil)
		}
		s.cfg.Log.Printf("cluster: pulled %s from %s (%d bytes)", id, p.Name, len(data))
		return nil
	}
	return lastErr
}

// forwardCreate proxies a dictionary create to the owners of its content
// address. Creation is idempotent in cluster mode (the ID is the content
// address), so failover across owners is safe.
func (s *Server) forwardCreate(w http.ResponseWriter, r *http.Request, req *dictCreateRequest, id string) {
	c := s.cluster
	owners := c.healthyOwners(id)
	if len(owners) == 0 {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no reachable owner for dictionary %q", id)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "proxy: %v", err)
		return
	}
	res, err := c.hedger.Do(r.Context(), owners, func(ctx context.Context, p cluster.Peer) (*http.Request, error) {
		preq, err := http.NewRequestWithContext(ctx, http.MethodPost, p.URL+"/v1/dicts", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		preq.Header.Set("Content-Type", "application/json")
		preq.Header.Set(clusterFromHeader, c.membership.Self)
		return preq, nil
	})
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusBadGateway, "all owners of %q unreachable: %v", id, err)
		return
	}
	defer res.Release()
	s.metrics.clusterProxied.Add(1)
	if res.Hedged {
		s.metrics.clusterHedged.Add(1)
		if res.Index > 0 {
			s.metrics.clusterHedgeWon.Add(1)
		}
	}
	copyProxyResponse(w, res.Resp)
}

// GET /v1/cluster -----------------------------------------------------------

// clusterDictPlacement is one resident dictionary's placement row.
type clusterDictPlacement struct {
	ID      string   `json:"id"`
	Owners  []string `json:"owners"` // primary first
	Primary bool     `json:"primary"`
}

// clusterInfoResponse is the GET /v1/cluster payload: the static peer
// table, live health, and where this node's resident dictionaries sit on
// the ring.
type clusterInfoResponse struct {
	Enabled      bool                   `json:"enabled"`
	Self         string                 `json:"self,omitempty"`
	Replicas     int                    `json:"replicas,omitempty"`
	VirtualNodes int                    `json:"virtualNodes,omitempty"`
	Peers        []cluster.Peer         `json:"peers,omitempty"`
	Health       []cluster.PeerStatus   `json:"health,omitempty"`
	Resident     []clusterDictPlacement `json:"resident,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeJSON(w, http.StatusOK, clusterInfoResponse{Enabled: false})
		return
	}
	ring := c.membership.Ring()
	resp := clusterInfoResponse{
		Enabled:      true,
		Self:         c.membership.Self,
		Replicas:     ring.Replicas(),
		VirtualNodes: ring.VirtualNodes(),
		Peers:        c.membership.Peers(),
		Health:       c.health.Status(),
	}
	for _, info := range s.reg.Infos() {
		owners := ring.Owners(info.ID)
		resp.Resident = append(resp.Resident, clusterDictPlacement{
			ID:      info.ID,
			Owners:  owners,
			Primary: len(owners) > 0 && owners[0] == c.membership.Self,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterMetrics assembles the cluster section of /metrics.
func (s *Server) clusterMetrics() clusterSnapshot {
	snap := clusterSnapshot{
		Proxied:          s.metrics.clusterProxied.Load(),
		Redirected:       s.metrics.clusterRedirected.Load(),
		Hedged:           s.metrics.clusterHedged.Load(),
		HedgeWon:         s.metrics.clusterHedgeWon.Load(),
		ReplicationPulls: s.metrics.clusterReplPulls.Load(),
		ReplicationBytes: s.metrics.clusterReplBytes.Load(),
	}
	c := s.cluster
	if c == nil {
		return snap
	}
	snap.Enabled = true
	snap.Self = c.membership.Self
	snap.Peers = len(c.membership.Peers())
	snap.Replicas = c.membership.Ring().Replicas()
	snap.PeerTransitions = c.health.Transitions()
	for _, info := range s.reg.Infos() {
		owners := c.membership.Ring().Owners(info.ID)
		if len(owners) > 0 && owners[0] == c.membership.Self {
			snap.OwnedDicts++
		} else {
			snap.ReplicatedDicts++
		}
	}
	return snap
}
