package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/persist"
	"repro/internal/pram"
)

// Registry holds preprocessed dictionaries keyed by server-assigned IDs.
// It realizes the paper's preprocess-once/match-many split at the service
// level: POST /v1/dicts pays the §3 preprocessing cost exactly once, and
// every subsequent match/parse request against that ID reuses the resident
// structures at pure query cost.
//
// The registry is bounded: at most capacity dictionaries are resident, and
// inserting beyond that evicts the least-recently-used entry. Eviction only
// unlinks the entry from the registry — requests already holding the
// *Entry keep using it safely until they finish (the memory is reclaimed by
// GC when the last reference drops), so eviction never races a request.
type Registry struct {
	mu        sync.Mutex
	capacity  int
	seq       int64
	byID      map[string]*list.Element // element value is *Entry
	lru       *list.List               // front = most recently used
	evictions int64
	bytes     int64 // sum of resident TotalLen

	logf func(format string, args ...any) // inherited by entries; never nil
}

// Entry is one resident preprocessed dictionary.
//
// The matching read path of core.Dictionary is pure; the only mutation is
// Reseed (the Las Vegas retry after a fingerprint failure). Entry therefore
// guards the dictionary with an RWMutex: queries hold the read lock, and
// the astronomically rare reseed takes the write lock.
type Entry struct {
	ID          string
	NumPatterns int
	TotalLen    int // the paper's d
	MaxPatLen   int
	Created     time.Time
	Source      string // how the entry came to be: "preprocess", "cache", "snapshot"
	PrepNs      int64  // preprocessing wall time; 0 when loaded from a snapshot
	SnapKey     string // content-address hex when known (cache/write-through), else ""

	// info memoizes the static part of the EntryInfo payload so Infos()
	// and GET /v1/dicts/{id} only fill in the dynamic hit counter instead
	// of reassembling the struct per call.
	info EntryInfo

	hits atomic.Int64

	// Circuit breaker state (breaker.go): consecutive MatchChecked
	// exhaustions, and whether the entry is out of service while its
	// fingerprints are rebuilt in the background.
	failStreak atomic.Int32
	degraded   atomic.Bool
	logf       func(format string, args ...any) // never nil

	// Dense serving state (dense.go): the compiled automaton (nil until
	// compiled or restored from a DENSE snapshot section, then swapped in
	// atomically and never replaced), the compile election latch, and the
	// dense-served request count driving sampled oracle verification.
	denseAut   atomic.Pointer[dense.Automaton]
	denseElect atomic.Bool
	denseReqs  atomic.Int64

	// Compressed-domain serving state (czsearch.go): reusable scanners (one
	// per in-flight compressed request; Run resets them, so a pooled scanner
	// carries no state — not even a poisoned memo — into the next request)
	// and the compressed request count driving sampled oracle verification.
	czPool sync.Pool
	czReqs atomic.Int64

	// Request coalescing state (batch.go): per-entry batchers for the match
	// and parse endpoints, built lazily on the first eligible request. The
	// executors capture the entry, so the batchers live and die with it.
	batchInit  sync.Once
	matchBatch *batch.Batcher[matchResult]
	parseBatch *batch.Batcher[parseResult]

	mu   sync.RWMutex
	dict *core.Dictionary
	seed uint64
}

// Hits returns how many requests have looked this entry up.
func (e *Entry) Hits() int64 { return e.hits.Load() }

// Info returns the entry's description with the current hit count and
// serving state: whether a compiled dense automaton is live (and its size)
// and whether the circuit breaker is open.
func (e *Entry) Info() EntryInfo {
	info := e.info
	info.Hits = e.hits.Load()
	info.MaxPatLen = e.MaxPatLen
	if a := e.denseAut.Load(); a != nil {
		st := a.Stats()
		info.Dense = true
		info.DenseStates = st.States
		info.DenseTableBytes = st.TableBytes
	}
	info.Degraded = e.Degraded()
	return info
}

// SnapshotBytes serializes the entry's dictionary under the read lock, so a
// concurrent reseed cannot interleave (the snapshot is a consistent state).
// An entry that has a compiled dense automaton emits it as a DENSE section,
// so explicit snapshots carry the compiled form and restore without
// recompiling.
func (e *Entry) SnapshotBytes() []byte {
	a := e.denseAut.Load()
	e.mu.RLock()
	defer e.mu.RUnlock()
	return persist.EncodeBundle(e.dict, a)
}

// NewRegistry returns a registry bounded to capacity resident dictionaries
// (capacity < 1 is clamped to 1).
func NewRegistry(capacity int) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{
		capacity: capacity,
		byID:     make(map[string]*list.Element),
		lru:      list.New(),
		logf:     func(string, ...any) {},
	}
}

// SetLogf installs the logger new entries inherit for breaker transitions
// (nil restores the no-op default). Call before the first Register.
func (r *Registry) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r.mu.Lock()
	r.logf = logf
	r.mu.Unlock()
}

// Register preprocesses patterns on machine m (the expensive §3 step, run
// outside the registry lock) and inserts the result, evicting LRU entries
// beyond capacity. It returns the new entry and the IDs it evicted. The
// preprocessing wall time is recorded on the entry (Entry.PrepNs) — the
// quantity a snapshot cache hit saves.
func (r *Registry) Register(m *pram.Machine, patterns [][]byte, opts core.Options) (*Entry, []string) {
	start := time.Now()
	dict := core.Preprocess(m, patterns, opts)
	return r.insert(dict, "preprocess", "", time.Since(start).Nanoseconds())
}

// RegisterPrepared inserts an already-built dictionary — one loaded from a
// snapshot rather than preprocessed here. source labels how ("cache" for a
// create-time cache hit, "snapshot" for an explicit restore), snapKey is the
// content-address hex when known, and prepNs the load wall time.
func (r *Registry) RegisterPrepared(dict *core.Dictionary, source, snapKey string, prepNs int64) (*Entry, []string) {
	return r.RegisterPreparedDense(dict, nil, source, snapKey, prepNs)
}

// RegisterPreparedDense is RegisterPrepared for a bundle: the dictionary
// plus its compiled dense automaton (nil for none), restored together from a
// DENSE-bearing snapshot. The automaton is published on the entry before
// insertion, so no request ever observes the entry without it — and no
// compile election will run for it (the latch is pre-claimed).
func (r *Registry) RegisterPreparedDense(dict *core.Dictionary, aut *dense.Automaton, source, snapKey string, prepNs int64) (*Entry, []string) {
	return r.insertDense("", dict, aut, source, snapKey, prepNs)
}

// RegisterPreparedDenseID is RegisterPreparedDense under a caller-chosen ID
// instead of a server-assigned one. Cluster mode uses it with the
// dictionary's content address, so every node names the same patterns the
// same way with zero coordination. Registering an ID that is already
// resident replaces the old entry (same content address ⇒ same dictionary;
// in-flight requests keep their *Entry safely, as with eviction).
func (r *Registry) RegisterPreparedDenseID(id string, dict *core.Dictionary, aut *dense.Automaton, source, snapKey string, prepNs int64) (*Entry, []string) {
	return r.insertDense(id, dict, aut, source, snapKey, prepNs)
}

func (r *Registry) insert(dict *core.Dictionary, source, snapKey string, prepNs int64) (*Entry, []string) {
	return r.insertDense("", dict, nil, source, snapKey, prepNs)
}

func (r *Registry) insertDense(id string, dict *core.Dictionary, aut *dense.Automaton, source, snapKey string, prepNs int64) (*Entry, []string) {
	total, maxPat := 0, 0
	for _, p := range dict.Patterns {
		total += len(p)
		if len(p) > maxPat {
			maxPat = len(p)
		}
	}
	e := &Entry{
		NumPatterns: len(dict.Patterns),
		TotalLen:    total,
		MaxPatLen:   maxPat,
		Created:     time.Now(),
		Source:      source,
		PrepNs:      prepNs,
		SnapKey:     snapKey,
		dict:        dict,
		seed:        dict.Seed(),
	}
	if aut != nil {
		// Published before the registry lock, so no request ever sees the
		// entry without its automaton; the claimed election latch keeps
		// armDense from compiling what the snapshot already delivered.
		e.denseElect.Store(true)
		e.denseAut.Store(aut)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if id == "" {
		r.seq++
		id = fmt.Sprintf("d%d", r.seq)
	} else if el, dup := r.byID[id]; dup {
		// Replace-on-same-ID: unlink the old entry exactly like an eviction.
		r.lru.Remove(el)
		delete(r.byID, id)
		r.bytes -= int64(el.Value.(*Entry).TotalLen)
	}
	e.ID = id
	e.logf = r.logf
	e.info = EntryInfo{
		ID:       e.ID,
		Patterns: e.NumPatterns,
		TotalLen: e.TotalLen,
		Created:  e.Created,
		Source:   e.Source,
		PrepNs:   e.PrepNs,
		SnapKey:  e.SnapKey,
	}
	r.byID[e.ID] = r.lru.PushFront(e)
	r.bytes += int64(total)
	var evicted []string
	for r.lru.Len() > r.capacity {
		back := r.lru.Back()
		victim := back.Value.(*Entry)
		r.lru.Remove(back)
		delete(r.byID, victim.ID)
		r.bytes -= int64(victim.TotalLen)
		r.evictions++
		evicted = append(evicted, victim.ID)
	}
	return e, evicted
}

// Get returns the entry for id, refreshing its LRU position.
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	r.lru.MoveToFront(el)
	e := el.Value.(*Entry)
	e.hits.Add(1)
	return e, true
}

// Has reports whether id is resident without touching its LRU position or
// hit count (the cluster router asks "do I hold this?" before deciding to
// pull or proxy; that question is not a use of the entry).
func (r *Registry) Has(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.byID[id]
	return ok
}

// Remove deletes the entry for id, reporting whether it was resident.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byID[id]
	if !ok {
		return false
	}
	r.lru.Remove(el)
	delete(r.byID, id)
	r.bytes -= int64(el.Value.(*Entry).TotalLen)
	return true
}

// Len returns the number of resident entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// EntryInfo is the externally visible description of a resident entry,
// in most-recently-used-first order. The static fields are memoized on the
// entry at insert time; only Hits is read per call.
type EntryInfo struct {
	ID       string    `json:"id"`
	Patterns int       `json:"patterns"`
	TotalLen int       `json:"totalLen"`
	Created  time.Time `json:"created"`
	Source   string    `json:"source"`
	PrepNs   int64     `json:"prepNs"`
	SnapKey  string    `json:"snapshotKey,omitempty"`
	Hits     int64     `json:"hits"`

	// Serving state, filled per call: the compiled dense automaton (if one
	// is live) and the circuit-breaker position.
	MaxPatLen       int   `json:"maxPatLen"`
	Dense           bool  `json:"dense"`
	DenseStates     int   `json:"denseStates,omitempty"`
	DenseTableBytes int64 `json:"denseTableBytes,omitempty"`
	Degraded        bool  `json:"degraded"`
}

// Infos lists the resident entries, most recently used first.
func (r *Registry) Infos() []EntryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EntryInfo, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry).Info())
	}
	return out
}

// DegradedIDs lists the resident entries whose circuit breaker is open.
func (r *Registry) DegradedIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []string
	for el := r.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*Entry); e.Degraded() {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// RegistrySnapshot is the registry section of the metrics payload.
type RegistrySnapshot struct {
	Dicts        int   `json:"dicts"`
	Capacity     int   `json:"capacity"`
	Evictions    int64 `json:"evictions"`
	PatternBytes int64 `json:"patternBytes"`
	Degraded     int   `json:"degraded"`
}

// Snapshot returns occupancy counters for GET /metrics.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	degraded := 0
	for el := r.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*Entry).Degraded() {
			degraded++
		}
	}
	return RegistrySnapshot{
		Dicts:        r.lru.Len(),
		Capacity:     r.capacity,
		Evictions:    r.evictions,
		PatternBytes: r.bytes,
		Degraded:     degraded,
	}
}
