//go:build chaos

package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/lz"
)

// czChaosFixture registers a dictionary and builds a container whose copy
// tokens repeat one (entry state, src, len) key over and over — the memo-hit
// workload the czsearch.cache fault needs (an optimal parse never repeats a
// token, so the poison would have nothing to land on).
func czChaosFixture(t *testing.T, base string, reps int) (string, []byte) {
	t.Helper()
	status, body := postJSON(t, base+"/v1/dicts", map[string]any{"patterns": []string{"yx", "xyxy"}})
	if status != http.StatusCreated {
		t.Fatalf("dict create: %d %s", status, body)
	}
	var created dictCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	toks := []lz.Token{{Lit: 'x'}, {Lit: 'y'}}
	for i := 0; i < reps; i++ {
		toks = append(toks, lz.Token{Src: 0, Len: 2})
	}
	var buf bytes.Buffer
	if err := lz.EncodeStream(&buf, lz.Compressed{N: 2 + 2*reps, Tokens: toks}); err != nil {
		t.Fatal(err)
	}
	return created.ID, buf.Bytes()
}

// postCompressedBuffered posts a container to the buffered compressed-match
// endpoint.
func postCompressedBuffered(t *testing.T, base, id string, container []byte) (int, []byte) {
	t.Helper()
	return postJSON(t, base+"/v1/dicts/"+id+"/match/compressed/buffered",
		map[string]string{"dataB64": base64.StdEncoding.EncodeToString(container)})
}

// TestChaosCzPoisonedCacheCaught5xx is the serving half of the czsearch.cache
// story (the package half lives in internal/czsearch): a poisoned memo entry
// makes the scanner's output diverge, the sampled decompress-then-match
// oracle catches it, and the request fails 500 — never a silently wrong 200.
// The follow-up request on the same entry (same pooled scanner) succeeds
// with oracle-identical output, so one poisoned request cannot wedge the
// scanner pool.
func TestChaosCzPoisonedCacheCaught5xx(t *testing.T) {
	srv, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOn,
	})
	id, container := czChaosFixture(t, base, 50)

	// Poison every memo store. Request 1 is always an oracle sample.
	plan := installPlan(t, 5, "czsearch.cache:p=1")
	status, body := postCompressedBuffered(t, base, id, container)
	if status != http.StatusInternalServerError {
		t.Fatalf("poisoned request: %d %s, want 500", status, body)
	}
	if !strings.Contains(string(body), "oracle") {
		t.Fatalf("poisoned request error does not name the oracle: %s", body)
	}
	if firedCount(plan, chaos.CzCache) == 0 {
		t.Fatal("czsearch.cache never fired — the test exercised nothing")
	}
	if n := srv.Metrics().czVerifyFail.Load(); n != 1 {
		t.Fatalf("czVerifyFail = %d, want 1", n)
	}

	// Disarm and replay: the pooled scanner is reset per run, so the second
	// request is clean and byte-identical to decompress-then-match.
	chaos.Install(nil)
	status, body = postCompressedBuffered(t, base, id, container)
	if status != http.StatusOK {
		t.Fatalf("request after poison: %d %s, want 200", status, body)
	}
	var mr matchCompressedResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	want := oracleHits(t, base, id, bytes.Repeat([]byte("xy"), 51))
	if len(mr.Hits) != len(want) {
		t.Fatalf("request after poison: %d hits, oracle has %d", len(mr.Hits), len(want))
	}
	for i, h := range mr.Hits {
		if h != want[i] {
			t.Fatalf("request after poison: hit %d = %+v, oracle %+v", i, h, want[i])
		}
	}
	if mr.Stats.MemoHits == 0 {
		t.Fatal("request after poison took no memo hits — cache disabled instead of cleaned")
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCzTruncateIs5xx: a czsearch.truncate fault mid-stream fails the
// buffered request with a 500 carrying the injected error — never a
// truncated 200 — and the endpoint serves correctly once disarmed.
func TestChaosCzTruncateIs5xx(t *testing.T) {
	_, base, shutdown := startServer(t, Config{
		Addr: "127.0.0.1:0", Procs: 1, DenseMode: DenseOn,
	})
	id, container := czChaosFixture(t, base, 50)

	installPlan(t, 9, "czsearch.truncate:every=20")
	status, body := postCompressedBuffered(t, base, id, container)
	if status != http.StatusInternalServerError {
		t.Fatalf("truncated request: %d %s, want 500", status, body)
	}

	chaos.Install(nil)
	status, body = postCompressedBuffered(t, base, id, container)
	if status != http.StatusOK {
		t.Fatalf("request after truncation: %d %s", status, body)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}
