package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/stream"
)

// Streaming endpoints. Where the buffered /v1 handlers read the whole body,
// cap it at MaxBodyBytes, and answer with one JSON document, these two
// routes pump the body through internal/stream with O(segment + halo)
// resident text, so a client can push a text far larger than MaxBodyBytes
// (the cap deliberately does not apply — memory is bounded by the pipeline,
// not by the body size):
//
//	POST /v1/dicts/{id}/match/stream   raw text in  → NDJSON events out
//	POST /v1/decompress/stream         LZ1R1 in     → raw bytes out
//
// NDJSON protocol: one {"pos","pattern","length"} object per match, in
// position order, flushed at every segment boundary; the final line is
// either {"summary":{...}} on success or {"error":"..."} — clients must
// treat a missing summary as a failed stream (the HTTP status is already
// committed when a mid-stream error occurs).

// entryMatcher adapts a registry entry to stream.TextMatcher: per-window
// checked (Las Vegas) matching under the entry's read lock, charging the
// service PRAM ledgers.
type entryMatcher struct {
	e     *Entry
	procs int
	mt    *Metrics
}

func (em entryMatcher) MaxPatternLen() int { return em.e.MaxPatLen }

func (em entryMatcher) MatchWindow(ctx context.Context, window []byte) ([]core.Match, int, pram.Counters, error) {
	matches, attempts, cost, err := em.e.MatchChecked(ctx, window, em.procs, em.mt)
	return matches, attempts, cost, err
}

// matchStreamSink writes NDJSON events and flushes per segment.
type matchStreamSink struct {
	bw *bufio.Writer
	rc *http.ResponseController
	mt *Metrics
}

func (k *matchStreamSink) MatchEvent(e stream.MatchEvent) error {
	k.mt.streamEvents.Add(1)
	_, err := fmt.Fprintf(k.bw, `{"pos":%d,"pattern":%d,"length":%d}`+"\n", e.Pos, e.PatternID, e.Length)
	return err
}

func (k *matchStreamSink) SegmentDone(info stream.SegmentInfo) error {
	k.mt.streamSegments.Add(1)
	k.mt.streamBytes.Add(int64(info.Finalized))
	if err := k.bw.Flush(); err != nil {
		return err
	}
	// Push the segment's events to the client now; a sink that only fills
	// the HTTP buffer would batch the whole stream. Not all writers can
	// flush (e.g. some test recorders) — that is fine.
	if err := k.rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		return err
	}
	return nil
}

// streamSummary is the NDJSON trailer on success.
type streamSummary struct {
	N           int64 `json:"n"`
	Segments    int64 `json:"segments"`
	Events      int64 `json:"events"`
	Rounds      int   `json:"rounds"`
	Work        int64 `json:"work"`
	Depth       int64 `json:"depth"`
	MaxResident int   `json:"maxResident"`
}

// handleMatchStream matches a streamed text — raw bytes, chunked encoding
// welcome — against a resident dictionary. The registration pattern is
// "POST /v1/dicts/{id}/match/stream"; the optional ?segment=N query
// overrides the server's segment size within [1 KiB, 64 MiB].
func (s *Server) handleMatchStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no dictionary %q", id)
		return
	}
	segSize := s.cfg.SegmentBytes
	if q := r.URL.Query().Get("segment"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1<<10 || v > 64<<20 {
			writeError(w, http.StatusBadRequest, "segment must be an integer in [%d, %d]", 1<<10, 64<<20)
			return
		}
		segSize = v
	}

	s.metrics.streamStarted.Add(1)
	s.metrics.streamActive.Add(1)
	defer s.metrics.streamActive.Add(-1)

	rc := http.NewResponseController(w)
	// The pipeline reads the request body while the response streams; on
	// HTTP/1.x the first response write would otherwise close the body.
	// (HTTP/2 is full duplex natively; a not-supported error is fine.)
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	sink := &matchStreamSink{bw: bufio.NewWriterSize(w, 32<<10), rc: rc, mt: s.metrics}
	st, err := stream.Match(r.Context(), entryMatcher{e: e, procs: s.cfg.Procs, mt: s.metrics}, r.Body, sink, stream.Config{SegmentBytes: segSize})
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away or the connection died: nothing to tell.
			s.metrics.timeouts.Add(1)
			return
		}
		// The status line is long gone; the error travels as the last
		// NDJSON line instead.
		fmt.Fprintf(sink.bw, `{"error":%q}`+"\n", err.Error())
		sink.bw.Flush()
		return
	}
	fmt.Fprintf(sink.bw, `{"summary":{"n":%d,"segments":%d,"events":%d,"rounds":%d,"work":%d,"depth":%d,"maxResident":%d}}`+"\n",
		st.TextBytes, st.Segments, st.Events, st.Rounds, st.Work, st.Depth, st.MaxResident)
	sink.bw.Flush()
}

// countingWriter tracks whether any body bytes were committed, so error
// paths know whether a proper status can still be sent.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// handleDecompressStream expands a streamed LZ1R1 container to raw bytes
// with the windowed uncompressor: O(1) tokens plus StreamWindow retained
// history resident, output capped at MaxExpandBytes. Container header
// problems still get a proper HTTP status; token-level corruption after
// output has started can only truncate the stream (clients compare against
// the X-Uncompressed-Length header).
func (s *Server) handleDecompressStream(w http.ResponseWriter, r *http.Request) {
	u, err := stream.NewUncompressor(r.Body, stream.UncompressConfig{
		Window:    s.cfg.StreamWindow,
		MaxOutput: s.cfg.MaxExpandBytes,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "bad LZ1R1 stream: %v", err)
		return
	}
	if int64(u.N()) > s.cfg.MaxExpandBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			"decompressed size %d exceeds %d bytes", u.N(), s.cfg.MaxExpandBytes)
		return
	}

	s.metrics.streamStarted.Add(1)
	s.metrics.streamActive.Add(1)
	defer s.metrics.streamActive.Add(-1)

	// Same full-duplex requirement as the match stream: tokens are still
	// being read from the body while decoded bytes go out.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Uncompressed-Length", strconv.Itoa(u.N()))
	cw := &countingWriter{w: w}
	st, err := u.Run(r.Context(), cw)
	s.metrics.ChargePRAM("uncompress", st.Work, st.Depth)
	s.metrics.streamEvents.Add(st.Events)
	s.metrics.streamBytes.Add(st.TextBytes)
	if err != nil {
		if r.Context().Err() != nil {
			s.metrics.timeouts.Add(1)
			return
		}
		if cw.n == 0 {
			writeError(w, http.StatusUnprocessableEntity, "corrupt stream: %v", err)
			return
		}
		s.cfg.Log.Printf("decompress stream aborted after %d bytes: %v", cw.n, err)
	}
}
