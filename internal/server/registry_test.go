package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pram"
)

func mustRegister(t *testing.T, r *Registry, patterns ...string) *Entry {
	t.Helper()
	ps := make([][]byte, len(patterns))
	for i, p := range patterns {
		ps[i] = []byte(p)
	}
	e, _ := r.Register(pram.NewSequential(), ps, core.Options{})
	return e
}

func TestRegistryEvictionOrder(t *testing.T) {
	r := NewRegistry(2)
	e1 := mustRegister(t, r, "abc")
	e2 := mustRegister(t, r, "def")
	// Third insert evicts the least recently used (e1).
	ps := [][]byte{[]byte("ghi")}
	e3, evicted := r.Register(pram.NewSequential(), ps, core.Options{})
	if len(evicted) != 1 || evicted[0] != e1.ID {
		t.Fatalf("evicted = %v, want [%s]", evicted, e1.ID)
	}
	if _, ok := r.Get(e1.ID); ok {
		t.Fatalf("%s still resident after eviction", e1.ID)
	}
	// Touch e2 so e3 becomes LRU; the next insert must evict e3.
	if _, ok := r.Get(e2.ID); !ok {
		t.Fatalf("%s missing", e2.ID)
	}
	_, evicted = r.Register(pram.NewSequential(), [][]byte{[]byte("jkl")}, core.Options{})
	if len(evicted) != 1 || evicted[0] != e3.ID {
		t.Fatalf("evicted = %v, want [%s] (LRU after touching %s)", evicted, e3.ID, e2.ID)
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	snap := r.Snapshot()
	if snap.Evictions != 2 || snap.Capacity != 2 || snap.Dicts != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRegistryRemoveAndInfos(t *testing.T) {
	r := NewRegistry(8)
	e1 := mustRegister(t, r, "abc", "de")
	e2 := mustRegister(t, r, "xyz")
	infos := r.Infos()
	if len(infos) != 2 || infos[0].ID != e2.ID || infos[1].ID != e1.ID {
		t.Fatalf("Infos order = %v, want MRU first [%s %s]", infos, e2.ID, e1.ID)
	}
	if infos[1].TotalLen != 5 || infos[1].Patterns != 2 {
		t.Fatalf("info = %+v", infos[1])
	}
	if !r.Remove(e1.ID) || r.Remove(e1.ID) {
		t.Fatal("Remove should succeed once then report missing")
	}
	if snap := r.Snapshot(); snap.PatternBytes != 3 {
		t.Fatalf("PatternBytes = %d after remove, want 3", snap.PatternBytes)
	}
}

// TestRegistryConcurrent hammers register/lookup/evict/remove from many
// goroutines; run under -race it checks the locking discipline.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(4) // small capacity so evictions happen constantly
	const workers = 8
	const rounds = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; i < rounds; i++ {
				pat := fmt.Sprintf("p%d-%d", w, i)
				e, _ := r.Register(pram.NewSequential(), [][]byte{[]byte(pat)}, core.Options{})
				mine = append(mine, e.ID)
				// Look up everything we ever registered; most are evicted.
				for _, id := range mine {
					if ent, ok := r.Get(id); ok && ent.NumPatterns != 1 {
						t.Errorf("corrupt entry %s", id)
					}
				}
				r.Infos()
				r.Snapshot()
				if i%7 == 0 {
					r.Remove(mine[len(mine)/2])
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Len(); got > 4 {
		t.Fatalf("Len = %d exceeds capacity 4", got)
	}
}

// TestEvictedEntryUsableMidRequest pins the eviction contract: a request
// holding an *Entry keeps getting correct answers after the registry drops
// it — eviction unlinks, it does not invalidate.
func TestEvictedEntryUsableMidRequest(t *testing.T) {
	r := NewRegistry(1)
	e := mustRegister(t, r, "abra", "ra")
	// Evict e by inserting another dictionary into the capacity-1 registry.
	mustRegister(t, r, "zzz")
	if _, ok := r.Get(e.ID); ok {
		t.Fatal("entry should be evicted")
	}
	text := []byte("abracadabra")
	matches, attempts, _, err := e.MatchChecked(context.Background(), text, 2, nil)
	if err != nil || attempts != 1 {
		t.Fatalf("MatchChecked after eviction: attempts=%d err=%v", attempts, err)
	}
	// "abra" at 0 and 7, "ra" at 2 and 9.
	wantLen := map[int]int32{0: 4, 2: 2, 7: 4, 9: 2}
	for i, mt := range matches {
		if want := wantLen[i]; mt.Length != want {
			t.Fatalf("pos %d: length %d, want %d", i, mt.Length, want)
		}
	}
}

// TestMatchShardedAgreesWithSingle checks the halo sharding against the
// unsharded matcher on a text long enough to split many ways.
func TestMatchShardedAgreesWithSingle(t *testing.T) {
	patterns := [][]byte{[]byte("abab"), []byte("ba"), []byte("aabb")}
	dict := core.Preprocess(pram.NewSequential(), patterns, core.Options{})
	n := 3 * minShardLen
	text := make([]byte, n)
	for i := range text {
		text[i] = "ab"[i%2]
		if i%97 == 0 {
			text[i] = 'a'
		}
	}
	want := dict.MatchText(pram.NewSequential(), text)
	got, counters := matchSharded(dict, text, 4)
	if counters.Work == 0 || counters.Depth == 0 {
		t.Fatal("sharded matcher charged no PRAM cost")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pos %d: sharded %+v != single %+v", i, got[i], want[i])
		}
	}
}

func TestLimiter(t *testing.T) {
	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("first two acquires must succeed")
	}
	if l.TryAcquire() {
		t.Fatal("third acquire must fail")
	}
	if l.Inflight() != 2 || l.Capacity() != 2 || l.Rejected() != 1 {
		t.Fatalf("inflight=%d cap=%d rejected=%d", l.Inflight(), l.Capacity(), l.Rejected())
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("acquire after release must succeed")
	}
}
