// Package par provides the classic PRAM building blocks every algorithm in
// this repository is assembled from: parallel prefix sums (scan), reduction,
// stream compaction, pointer jumping / list ranking, and stable parallel
// radix sort. Each operation runs as a sequence of pram.Machine super-steps,
// so its work and depth are charged to the machine's ledger.
package par

import "repro/internal/pram"

// ExclusiveScan replaces a with its exclusive prefix sums and returns the
// total. a[i] becomes sum(a[0..i)). Work O(n), depth O(log n).
//
// The implementation is the standard two-phase (upsweep / downsweep) Blelloch
// scan on an implicit binary tree over blocks.
func ExclusiveScan(m *pram.Machine, a []int64) int64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	if n == 1 {
		t := a[0]
		a[0] = 0
		return t
	}
	// Upsweep: after round with stride s, a[k] for k ≡ s*2-1 (mod s*2) holds
	// the sum of the block of size 2s ending at k.
	for s := 1; s < n; s *= 2 {
		stride := 2 * s
		cnt := n / stride
		if n%stride > s {
			cnt++ // a partial right block still has a complete left child
		}
		sCopy, strideCopy := s, stride
		m.ParallelFor(cnt, func(j int) {
			right := j*strideCopy + strideCopy - 1
			left := j*strideCopy + sCopy - 1
			if right >= n {
				right = n - 1
			}
			a[right] += a[left]
		})
	}
	total := a[n-1]
	a[n-1] = 0
	// Downsweep.
	top := 1
	for top*2 < n {
		top *= 2
	}
	for s := top; s >= 1; s /= 2 {
		stride := 2 * s
		cnt := n / stride
		if n%stride > s {
			cnt++
		}
		sCopy, strideCopy := s, stride
		m.ParallelFor(cnt, func(j int) {
			right := j*strideCopy + strideCopy - 1
			left := j*strideCopy + sCopy - 1
			if right >= n {
				right = n - 1
			}
			t := a[left]
			a[left] = a[right]
			a[right] += t
		})
	}
	return total
}

// InclusiveScan replaces a with its inclusive prefix sums and returns the
// total. a[i] becomes sum(a[0..i]).
func InclusiveScan(m *pram.Machine, a []int64) int64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	orig := m.GetInt64s(n)
	m.ParallelFor(n, func(i int) { orig[i] = a[i] })
	total := ExclusiveScan(m, a)
	m.ParallelFor(n, func(i int) { a[i] += orig[i] })
	m.PutInt64s(orig)
	return total
}

// PrefixMax replaces a with its inclusive prefix maxima: a[i] becomes
// max(a[0..i]). Work O(n log n) in this doubling formulation, depth
// O(log n). (Lemma 2.3's prefix-maxima can be done in O(n) work; the extra
// log lives only in dictionary preprocessing and is called out in
// DESIGN.md.)
func PrefixMax(m *pram.Machine, a []int64) {
	n := len(a)
	if n <= 1 {
		return
	}
	buf := m.GetInt64s(n)
	src, dst := a, buf
	for s := 1; s < n; s *= 2 {
		sCopy, srcCopy, dstCopy := s, src, dst
		m.ParallelFor(n, func(i int) {
			v := srcCopy[i]
			if i >= sCopy && srcCopy[i-sCopy] > v {
				v = srcCopy[i-sCopy]
			}
			dstCopy[i] = v
		})
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		m.ParallelFor(n, func(i int) { a[i] = src[i] })
	}
	m.PutInt64s(buf)
}

// PrefixMaxLinear computes inclusive prefix maxima with O(n) work: blocks
// of constant size are scanned by one virtual processor each, block maxima
// are combined with a doubling scan over the (n/blockSize)-length summary,
// and each block is rewritten with its incoming carry. Depth O(log n) plus
// the constant block size.
func PrefixMaxLinear(m *pram.Machine, a []int64) {
	n := len(a)
	const block = 256
	if n <= 2*block {
		PrefixMax(m, a)
		return
	}
	nb := (n + block - 1) / block
	sums := m.GetInt64s(nb)
	defer m.PutInt64s(sums)
	m.ParallelForCost(nb, block, func(b int) {
		lo, hi := b*block, (b+1)*block
		if hi > n {
			hi = n
		}
		best := a[lo]
		for i := lo + 1; i < hi; i++ {
			if a[i] > best {
				best = a[i]
			} else {
				a[i] = best
			}
		}
		sums[b] = best
	})
	PrefixMax(m, sums) // O(nb log nb) = O(n/256 * log) — linear overall
	m.ParallelForCost(nb, block, func(b int) {
		if b == 0 {
			return
		}
		carry := sums[b-1]
		lo, hi := b*block, (b+1)*block
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if a[i] < carry {
				a[i] = carry
			}
		}
	})
}

// SuffixMax replaces a with its inclusive suffix maxima: a[i] becomes
// max(a[i..n)).
func SuffixMax(m *pram.Machine, a []int64) {
	n := len(a)
	if n <= 1 {
		return
	}
	buf := m.GetInt64s(n)
	src, dst := a, buf
	for s := 1; s < n; s *= 2 {
		sCopy, srcCopy, dstCopy := s, src, dst
		m.ParallelFor(n, func(i int) {
			v := srcCopy[i]
			if i+sCopy < n && srcCopy[i+sCopy] > v {
				v = srcCopy[i+sCopy]
			}
			dstCopy[i] = v
		})
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		m.ParallelFor(n, func(i int) { a[i] = src[i] })
	}
	m.PutInt64s(buf)
}

// Reduce returns the combine-fold of a with the given identity. combine must
// be associative. Work O(n), depth O(log n).
func Reduce(m *pram.Machine, a []int64, identity int64, combine func(x, y int64) int64) int64 {
	n := len(a)
	if n == 0 {
		return identity
	}
	cur := m.GetInt64s(n)
	buf := m.GetInt64s((n + 1) / 2)
	m.ParallelFor(n, func(i int) { cur[i] = a[i] })
	for len(cur) > 1 {
		half := (len(cur) + 1) / 2
		next := buf[:half]
		curCopy := cur
		m.ParallelFor(half, func(i int) {
			if 2*i+1 < len(curCopy) {
				next[i] = combine(curCopy[2*i], curCopy[2*i+1])
			} else {
				next[i] = curCopy[2*i]
			}
		})
		cur, buf = next, cur
	}
	out := combine(identity, cur[0])
	m.PutInt64s(cur)
	m.PutInt64s(buf)
	return out
}

// MaxIndex returns the index of a maximum element of a (lowest index among
// ties) and its value. Work O(n), depth O(log n).
func MaxIndex(m *pram.Machine, a []int64) (idx int, val int64) {
	n := len(a)
	if n == 0 {
		return -1, 0
	}
	// Tournament over (value, index) pairs held in parallel scratch arrays.
	curV, curI := m.GetInt64s(n), m.GetInt64s(n)
	bufV, bufI := m.GetInt64s((n+1)/2), m.GetInt64s((n+1)/2)
	m.ParallelFor(n, func(i int) { curV[i], curI[i] = a[i], int64(i) })
	for len(curV) > 1 {
		half := (len(curV) + 1) / 2
		nextV, nextI := bufV[:half], bufI[:half]
		cv, ci := curV, curI
		m.ParallelFor(half, func(i int) {
			if 2*i+1 < len(cv) {
				xv, xi := cv[2*i], ci[2*i]
				yv, yi := cv[2*i+1], ci[2*i+1]
				if yv > xv || (yv == xv && yi < xi) {
					nextV[i], nextI[i] = yv, yi
				} else {
					nextV[i], nextI[i] = xv, xi
				}
			} else {
				nextV[i], nextI[i] = cv[2*i], ci[2*i]
			}
		})
		curV, bufV = nextV, curV
		curI, bufI = nextI, curI
	}
	idx, val = int(curI[0]), curV[0]
	m.PutInt64s(curV)
	m.PutInt64s(curI)
	m.PutInt64s(bufV)
	m.PutInt64s(bufI)
	return idx, val
}
