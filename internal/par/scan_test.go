package par

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/pram"
)

func machines() []*pram.Machine {
	seq := pram.NewSequential()
	par := pram.New(4)
	par.SetGrain(13) // force chunked schedules in tests
	return []*pram.Machine{seq, par}
}

func randInt64s(rng *rand.Rand, n int, max int64) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = rng.Int64N(max)
	}
	return a
}

func TestExclusiveScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, m := range machines() {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 100, 1023, 4096, 10000} {
			a := randInt64s(rng, n, 100)
			want := make([]int64, n)
			var sum int64
			for i := 0; i < n; i++ {
				want[i] = sum
				sum += a[i]
			}
			got := append([]int64(nil), a...)
			total := ExclusiveScan(m, got)
			if total != sum {
				t.Fatalf("n=%d total=%d want %d", n, total, sum)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d scan[%d]=%d want %d", n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestInclusiveScan(t *testing.T) {
	m := pram.New(4)
	a := []int64{3, 1, 4, 1, 5}
	total := InclusiveScan(m, a)
	want := []int64{3, 4, 8, 9, 14}
	if total != 14 {
		t.Fatalf("total = %d", total)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("inclusive[%d]=%d want %d", i, a[i], want[i])
		}
	}
}

func TestPrefixAndSuffixMax(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, m := range machines() {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			a := randInt64s(rng, n, 1000)
			pre := append([]int64(nil), a...)
			suf := append([]int64(nil), a...)
			PrefixMax(m, pre)
			SuffixMax(m, suf)
			var best int64 = -1 << 62
			for i := 0; i < n; i++ {
				if a[i] > best {
					best = a[i]
				}
				if pre[i] != best {
					t.Fatalf("prefixmax[%d]=%d want %d", i, pre[i], best)
				}
			}
			best = -1 << 62
			for i := n - 1; i >= 0; i-- {
				if a[i] > best {
					best = a[i]
				}
				if suf[i] != best {
					t.Fatalf("suffixmax[%d]=%d want %d", i, suf[i], best)
				}
			}
		}
	}
}

func TestReduceAndMaxIndex(t *testing.T) {
	m := pram.New(4)
	a := []int64{5, 2, 9, 9, 1}
	sum := Reduce(m, a, 0, func(x, y int64) int64 { return x + y })
	if sum != 26 {
		t.Fatalf("sum = %d", sum)
	}
	idx, val := MaxIndex(m, a)
	if idx != 2 || val != 9 {
		t.Fatalf("MaxIndex = (%d,%d), want (2,9) — lowest index among ties", idx, val)
	}
	if i, _ := MaxIndex(m, nil); i != -1 {
		t.Fatalf("MaxIndex(nil) = %d", i)
	}
}

func TestScanPropertySumPreserved(t *testing.T) {
	m := pram.New(4)
	f := func(raw []uint16) bool {
		a := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			a[i] = int64(v)
			want += int64(v)
		}
		return ExclusiveScan(m, a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPack(t *testing.T) {
	for _, m := range machines() {
		idx := Pack(m, 10, func(i int) bool { return i%3 == 0 })
		want := []int{0, 3, 6, 9}
		if len(idx) != len(want) {
			t.Fatalf("pack = %v", idx)
		}
		for i := range want {
			if idx[i] != want[i] {
				t.Fatalf("pack = %v want %v", idx, want)
			}
		}
		if got := Pack(m, 0, func(int) bool { return true }); got != nil {
			t.Fatalf("pack(0) = %v", got)
		}
		if got := Pack(m, 5, func(int) bool { return false }); len(got) != 0 {
			t.Fatalf("pack none = %v", got)
		}
	}
}

func TestPackInt64AndCount(t *testing.T) {
	m := pram.New(4)
	a := []int64{10, 11, 12, 13, 14}
	got := PackInt64(m, a, func(i int) bool { return a[i]%2 == 0 })
	want := []int64{10, 12, 14}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if c := Count(m, 100, func(i int) bool { return i < 37 }); c != 37 {
		t.Fatalf("count = %d", c)
	}
}

func TestPackLarge(t *testing.T) {
	m := pram.New(4)
	m.SetGrain(17)
	const n = 50_000
	idx := Pack(m, n, func(i int) bool { return i%7 == 2 })
	j := 0
	for i := 0; i < n; i++ {
		if i%7 == 2 {
			if idx[j] != i {
				t.Fatalf("idx[%d]=%d want %d", j, idx[j], i)
			}
			j++
		}
	}
	if j != len(idx) {
		t.Fatalf("len = %d want %d", len(idx), j)
	}
}

func TestPrefixMaxLinearMatchesPrefixMax(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, m := range machines() {
		for _, n := range []int{0, 1, 100, 512, 513, 5000} {
			a := randInt64s(rng, n, 1000)
			want := append([]int64(nil), a...)
			got := append([]int64(nil), a...)
			PrefixMax(m, want)
			PrefixMaxLinear(m, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d linear prefixmax[%d]=%d want %d", n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPrefixMaxLinearWorkIsLinear(t *testing.T) {
	work := func(n int) int64 {
		m := pram.NewSequential()
		rng := rand.New(rand.NewPCG(7, 8))
		a := randInt64s(rng, n, 1000)
		m.ResetCounters()
		PrefixMaxLinear(m, a)
		w, _ := m.Counters()
		return w
	}
	w1, w2 := work(1<<15), work(1<<16)
	if ratio := float64(w2) / float64(w1); ratio > 2.3 {
		t.Errorf("PrefixMaxLinear work ratio %.2f for doubled n, want ~2", ratio)
	}
}
