package par

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/pram"
)

// The cross-schedule equivalence suite: every primitive in this package must
// produce bit-identical outputs AND a bit-identical Work/Depth ledger on the
// sequential machine, the pooled machine at forced grains {1, 7}, the pooled
// machine with adaptive grain, and the legacy spawn engine. The PRAM cost
// model promises the ledger depends only on the algorithm and its input —
// never on procs, grain, or engine — and this suite is what holds that
// promise in place while the execution engine changes underneath.

// schedule is one (machine factory, label) point of the matrix.
type schedule struct {
	name string
	mk   func() *pram.Machine
}

func schedules() []schedule {
	grained := func(procs, g int) func() *pram.Machine {
		return func() *pram.Machine {
			m := pram.New(procs)
			m.SetGrain(g)
			return m
		}
	}
	return []schedule{
		{"sequential", pram.NewSequential},
		{"pooled/grain=1", grained(4, 1)},
		{"pooled/grain=7", grained(4, 7)},
		{"pooled/adaptive", func() *pram.Machine { return pram.New(4) }},
		{"spawn/adaptive", func() *pram.Machine { return pram.NewWithEngine(4, pram.EngineSpawn) }},
	}
}

// result captures one primitive run: any comparable output plus the ledger.
type result struct {
	out         interface{}
	work, depth int64
}

// runMatrix runs f under every schedule and asserts all results match the
// sequential reference exactly.
func runMatrix(t *testing.T, name string, f func(m *pram.Machine) interface{}) {
	t.Helper()
	var ref result
	for i, s := range schedules() {
		m := s.mk()
		out := f(m)
		w, d := m.Counters()
		m.Close()
		got := result{out: out, work: w, depth: d}
		if i == 0 {
			ref = got
			continue
		}
		if got.work != ref.work || got.depth != ref.depth {
			t.Errorf("%s on %s: ledger (work=%d depth=%d), sequential has (work=%d depth=%d)",
				name, s.name, got.work, got.depth, ref.work, ref.depth)
		}
		if !reflect.DeepEqual(got.out, ref.out) {
			t.Errorf("%s on %s: output diverges from sequential", name, s.name)
		}
	}
}

// randForest returns next pointers forming a pseudo-random in-forest with
// self-loop roots (the shape ListRank/ListRankContract/PointerJumpRoots
// consume).
func randForest(rng *rand.Rand, n int) []int {
	next := make([]int, n)
	perm := rng.Perm(n) // process in random order; point at earlier elements
	pos := make([]int, n)
	for i, p := range perm {
		pos[p] = i
	}
	for i := 0; i < n; i++ {
		if pos[i] == 0 || rng.IntN(8) == 0 {
			next[i] = i // root
			continue
		}
		next[i] = perm[rng.IntN(pos[i])]
	}
	return next
}

// randList returns a single chain over [0, n) in random order.
func randList(rng *rand.Rand, n int) []int {
	next := make([]int, n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[n-1]] = perm[n-1]
	return next
}

func TestCrossScheduleEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 100, 5000} {
		n := n
		rng := rand.New(rand.NewPCG(42, uint64(n)))
		base := randInt64s(rng, n, 1<<20)
		forest := randForest(rng, n)
		list := randList(rng, n)
		k2 := randInt64s(rng, n, 1<<20)
		k3 := randInt64s(rng, n, 1<<20)

		prims := []struct {
			name string
			f    func(m *pram.Machine) interface{}
		}{
			{"ExclusiveScan", func(m *pram.Machine) interface{} {
				a := append([]int64(nil), base...)
				total := ExclusiveScan(m, a)
				return []interface{}{a, total}
			}},
			{"InclusiveScan", func(m *pram.Machine) interface{} {
				a := append([]int64(nil), base...)
				total := InclusiveScan(m, a)
				return []interface{}{a, total}
			}},
			{"PrefixMax", func(m *pram.Machine) interface{} {
				a := append([]int64(nil), base...)
				PrefixMax(m, a)
				return a
			}},
			{"PrefixMaxLinear", func(m *pram.Machine) interface{} {
				a := append([]int64(nil), base...)
				PrefixMaxLinear(m, a)
				return a
			}},
			{"SuffixMax", func(m *pram.Machine) interface{} {
				a := append([]int64(nil), base...)
				SuffixMax(m, a)
				return a
			}},
			{"Reduce", func(m *pram.Machine) interface{} {
				return Reduce(m, base, 0, func(x, y int64) int64 { return x + y })
			}},
			{"MaxIndex", func(m *pram.Machine) interface{} {
				i, v := MaxIndex(m, base)
				return []interface{}{i, v}
			}},
			{"Pack", func(m *pram.Machine) interface{} {
				return Pack(m, n, func(i int) bool { return base[i]%3 == 0 })
			}},
			{"PackInt64", func(m *pram.Machine) interface{} {
				return PackInt64(m, base, func(i int) bool { return base[i]%2 == 0 })
			}},
			{"Count", func(m *pram.Machine) interface{} {
				return Count(m, n, func(i int) bool { return base[i]%5 == 0 })
			}},
			{"ListRank", func(m *pram.Machine) interface{} {
				return ListRank(m, forest)
			}},
			{"ListRankContract", func(m *pram.Machine) interface{} {
				return ListRankContract(m, forest)
			}},
			{"PointerJumpRoots", func(m *pram.Machine) interface{} {
				return PointerJumpRoots(m, forest)
			}},
			{"JumpTable", func(m *pram.Machine) interface{} {
				jt := NewJumpTable(m, list)
				out := make([]int, 0, 8)
				for _, hops := range []int64{0, 1, 2, int64(n / 2), int64(n - 1), int64(2 * n)} {
					out = append(out, jt.Successor(list[0], hops))
				}
				return out
			}},
			{"ParallelPathToRoot", func(m *pram.Machine) interface{} {
				start := 0
				return ParallelPathToRoot(m, list, start)
			}},
			{"SortPerm", func(m *pram.Machine) interface{} {
				return SortPerm(m, base, 1<<20)
			}},
			{"SortByPair", func(m *pram.Machine) interface{} {
				return SortByPair(m, base, k2, 1<<20)
			}},
			{"SortByTriple", func(m *pram.Machine) interface{} {
				return SortByTriple(m, base, k2, k3, 1<<20)
			}},
		}
		for _, p := range prims {
			t.Run(fmt.Sprintf("%s/n=%d", p.name, n), func(t *testing.T) {
				runMatrix(t, p.name, p.f)
			})
		}
	}
}
