package par

import (
	"fmt"
	"testing"

	"repro/internal/pram"
)

// benchList builds the single-chain successor array 0 → 1 → … → n-1 ∘.
func benchList(n int) []int {
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = n - 1
	return next
}

// BenchmarkListRankContractEngines is the acceptance microbenchmark of the
// pooled runtime: randomized list contraction at n = 1<<16 runs O(log n)
// rounds of small super-steps, so per-step overhead dominates the wall
// clock. (BenchmarkListRankContract in contract_test.go is the sequential
// baseline.)
func BenchmarkListRankContractEngines(b *testing.B) {
	const n = 1 << 16
	for _, engine := range []struct {
		name string
		e    pram.Engine
	}{{"pooled", pram.EnginePooled}, {"spawn", pram.EngineSpawn}} {
		b.Run("engine="+engine.name, func(b *testing.B) {
			m := pram.NewWithEngine(0, engine.e)
			defer m.Close()
			next := benchList(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rank := ListRankContract(m, next)
				if rank[0] != n-1 {
					b.Fatalf("rank[0] = %d", rank[0])
				}
			}
		})
	}
}

// BenchmarkListRankJump is the pointer-doubling variant at the same size.
func BenchmarkListRankJump(b *testing.B) {
	const n = 1 << 16
	m := pram.New(0)
	defer m.Close()
	next := benchList(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rank := ListRank(m, next)
		if rank[0] != n-1 {
			b.Fatalf("rank[0] = %d", rank[0])
		}
	}
}

// BenchmarkScanPrimitives tracks allocs/op of the arena-converted scan and
// pack primitives; before the arena each iteration allocated fresh scratch.
func BenchmarkScanPrimitives(b *testing.B) {
	const n = 1 << 16
	m := pram.New(0)
	defer m.Close()
	a := make([]int64, n)
	for i := range a {
		a[i] = int64((i * 2654435761) % 1000)
	}
	b.Run("ExclusiveScan", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]int64, n)
		for i := 0; i < b.N; i++ {
			copy(buf, a)
			ExclusiveScan(m, buf)
		}
	})
	b.Run("Reduce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Reduce(m, a, 0, func(x, y int64) int64 { return x + y })
		}
	})
	b.Run("MaxIndex", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MaxIndex(m, a)
		}
	})
	b.Run("Pack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Pack(m, n, func(i int) bool { return a[i]&1 == 0 })
		}
	})
}

// BenchmarkSortPerm tracks the radix sort across sizes.
func BenchmarkSortPerm(b *testing.B) {
	m := pram.New(0)
	defer m.Close()
	for _, n := range []int{1 << 12, 1 << 16} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64((i * 48271) % n)
		}
		perm := make([]int, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SortPermInPlace(m, keys, int64(n), perm)
			}
		})
	}
}
