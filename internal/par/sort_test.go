package par

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/pram"
)

func TestSortPermSortsAndIsStable(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, m := range machines() {
		for _, n := range []int{0, 1, 2, 255, 256, 257, 1000, 10000} {
			for _, maxKey := range []int64{1, 2, 255, 256, 65536, 1 << 40} {
				keys := randInt64s(rng, n, maxKey)
				perm := SortPerm(m, keys, maxKey)
				if len(perm) != n {
					t.Fatalf("perm len %d", len(perm))
				}
				seen := make([]bool, n)
				for i := 0; i < n; i++ {
					if seen[perm[i]] {
						t.Fatalf("perm not a permutation at %d", i)
					}
					seen[perm[i]] = true
					if i > 0 {
						if keys[perm[i-1]] > keys[perm[i]] {
							t.Fatalf("n=%d maxKey=%d not sorted at %d", n, maxKey, i)
						}
						if keys[perm[i-1]] == keys[perm[i]] && perm[i-1] > perm[i] {
							t.Fatalf("n=%d maxKey=%d not stable at %d", n, maxKey, i)
						}
					}
				}
			}
		}
	}
}

func TestSortPermMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	m := pram.New(4)
	const n = 5000
	keys := randInt64s(rng, n, 1<<30)
	perm := SortPerm(m, keys, 1<<30)
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		if keys[perm[i]] != want[i] {
			t.Fatalf("mismatch at %d: %d want %d", i, keys[perm[i]], want[i])
		}
	}
}

func TestSortByPairAndTriple(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	m := pram.New(4)
	const n = 3000
	const maxKey = 50 // small range to force many ties
	k1 := randInt64s(rng, n, maxKey)
	k2 := randInt64s(rng, n, maxKey)
	k3 := randInt64s(rng, n, maxKey)

	perm := SortByPair(m, k1, k2, maxKey)
	for i := 1; i < n; i++ {
		a, b := perm[i-1], perm[i]
		if k1[a] > k1[b] || (k1[a] == k1[b] && k2[a] > k2[b]) {
			t.Fatalf("pair sort wrong at %d", i)
		}
		if k1[a] == k1[b] && k2[a] == k2[b] && a > b {
			t.Fatalf("pair sort unstable at %d", i)
		}
	}

	perm = SortByTriple(m, k1, k2, k3, maxKey)
	for i := 1; i < n; i++ {
		a, b := perm[i-1], perm[i]
		ka := [3]int64{k1[a], k2[a], k3[a]}
		kb := [3]int64{k1[b], k2[b], k3[b]}
		for x := 0; x < 3; x++ {
			if ka[x] < kb[x] {
				break
			}
			if ka[x] > kb[x] {
				t.Fatalf("triple sort wrong at %d", i)
			}
			if x == 2 && a > b {
				t.Fatalf("triple sort unstable at %d", i)
			}
		}
	}
}

func TestSortAllEqualKeysIsIdentity(t *testing.T) {
	m := pram.New(4)
	keys := make([]int64, 1000)
	perm := SortPerm(m, keys, 0)
	for i := range perm {
		if perm[i] != i {
			t.Fatalf("stable sort of equal keys moved %d to %d", i, perm[i])
		}
	}
}

func TestSortWorkIsLinearPerPass(t *testing.T) {
	// Work(2n)/Work(n) should approach 2 for fixed key width.
	work := func(n int) int64 {
		m := pram.NewSequential()
		rng := rand.New(rand.NewPCG(17, 18))
		keys := randInt64s(rng, n, 1<<16)
		m.ResetCounters()
		SortPerm(m, keys, 1<<16)
		w, _ := m.Counters()
		return w
	}
	w1 := work(1 << 14)
	w2 := work(1 << 15)
	ratio := float64(w2) / float64(w1)
	if ratio > 2.4 {
		t.Errorf("sort work ratio for doubling n = %.2f, want ~2 (linear)", ratio)
	}
}
