package par

import "repro/internal/pram"

// Radix-sort parameters. Blocks of sortBlock items are processed
// sequentially by one virtual processor per pass; with a constant block size
// the added depth per pass is O(1), and the per-pass histogram memory is
// n/sortBlock * sortRadix = n entries.
const (
	sortRadix  = 256
	sortDigits = 8 // bits per pass
	sortBlock  = 256
)

// SortPerm returns a permutation p of [0, len(keys)) such that
// keys[p[0]] <= keys[p[1]] <= ... , stably (equal keys keep input order).
// Keys must be non-negative; maxKey bounds them and fixes the number of
// radix passes. Work O(n) per pass, depth O(log n) per pass (the scan).
func SortPerm(m *pram.Machine, keys []int64, maxKey int64) []int {
	n := len(keys)
	perm := make([]int, n)
	m.ParallelFor(n, func(i int) { perm[i] = i })
	SortPermInPlace(m, keys, maxKey, perm)
	return perm
}

// SortPermInPlace stably sorts the index slice perm by keys[perm[i]].
// It is the engine behind SortPerm and the multi-key sorts.
func SortPermInPlace(m *pram.Machine, keys []int64, maxKey int64, perm []int) {
	n := len(perm)
	if n <= 1 {
		return
	}
	passes := 1
	for k := maxKey >> sortDigits; k > 0; k >>= sortDigits {
		passes++
	}
	blocks := (n + sortBlock - 1) / sortBlock
	hist := m.GetInt64s(blocks * sortRadix)
	out := m.GetInts(n)
	defer func() {
		m.PutInt64s(hist)
		m.PutInts(out)
	}()
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * sortDigits)
		m.ParallelFor(blocks*sortRadix, func(i int) { hist[i] = 0 })
		// Local histograms, bucket-major layout hist[d*blocks+b] so that the
		// exclusive scan yields global stable scatter offsets directly.
		m.ParallelForCost(blocks, sortBlock, func(b int) {
			lo, hi := b*sortBlock, (b+1)*sortBlock
			if hi > n {
				hi = n
			}
			for _, idx := range perm[lo:hi] {
				d := (keys[idx] >> shift) & (sortRadix - 1)
				hist[int(d)*blocks+b]++
			}
		})
		ExclusiveScan(m, hist)
		m.ParallelForCost(blocks, sortBlock, func(b int) {
			lo, hi := b*sortBlock, (b+1)*sortBlock
			if hi > n {
				hi = n
			}
			var cursor [sortRadix]int64
			for d := 0; d < sortRadix; d++ {
				cursor[d] = hist[d*blocks+b]
			}
			for _, idx := range perm[lo:hi] {
				d := (keys[idx] >> shift) & (sortRadix - 1)
				out[cursor[d]] = idx
				cursor[d]++
			}
		})
		copy(perm, out)
	}
}

// SortByTriple stably sorts the indices [0, n) by the lexicographic order of
// (k1[i], k2[i], k3[i]) using three LSD passes. All keys must lie in
// [0, maxKey]. This is the sort DC3 suffix-array construction needs for its
// rank triples.
func SortByTriple(m *pram.Machine, k1, k2, k3 []int64, maxKey int64) []int {
	n := len(k1)
	perm := make([]int, n)
	m.ParallelFor(n, func(i int) { perm[i] = i })
	SortPermInPlace(m, k3, maxKey, perm)
	SortPermInPlace(m, k2, maxKey, perm)
	SortPermInPlace(m, k1, maxKey, perm)
	return perm
}

// SortByPair stably sorts the indices [0, n) by (k1[i], k2[i]).
func SortByPair(m *pram.Machine, k1, k2 []int64, maxKey int64) []int {
	n := len(k1)
	perm := make([]int, n)
	m.ParallelFor(n, func(i int) { perm[i] = i })
	SortPermInPlace(m, k2, maxKey, perm)
	SortPermInPlace(m, k1, maxKey, perm)
	return perm
}
