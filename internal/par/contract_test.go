package par

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

func TestListRankContractMatchesWyllie(t *testing.T) {
	rng := rand.New(rand.NewPCG(211, 212))
	for _, m := range machines() {
		// Plain chains.
		for _, n := range []int{0, 1, 2, 3, 100, 1024, 1025} {
			next := make([]int, n)
			for i := 0; i < n-1; i++ {
				next[i] = i + 1
			}
			if n > 0 {
				next[n-1] = n - 1
			}
			a := ListRank(m, next)
			b := ListRankContract(m, next)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("chain n=%d rank[%d]: %d vs %d", n, i, a[i], b[i])
				}
			}
		}
		// Shuffled lists.
		for trial := 0; trial < 5; trial++ {
			n := 500 + rng.IntN(1500)
			order := rng.Perm(n)
			next := make([]int, n)
			for k := 0; k < n-1; k++ {
				next[order[k]] = order[k+1]
			}
			next[order[n-1]] = order[n-1]
			a := ListRank(m, next)
			b := ListRankContract(m, next)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("shuffled rank[%d]: %d vs %d", i, a[i], b[i])
				}
			}
		}
		// In-forests (shared successors), as used by the parse-path code.
		for trial := 0; trial < 5; trial++ {
			n := 300 + rng.IntN(700)
			next := make([]int, n)
			for i := 0; i < n; i++ {
				if i >= n-3 || rng.IntN(12) == 0 {
					next[i] = i
				} else {
					next[i] = i + 1 + rng.IntN(n-1-i)
				}
			}
			a := ListRank(m, next)
			b := ListRankContract(m, next)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("forest rank[%d]: %d vs %d", i, a[i], b[i])
				}
			}
		}
	}
}

func TestListRankContractWorkIsLinear(t *testing.T) {
	work := func(n int) int64 {
		m := pram.NewSequential()
		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[i] = i + 1
		}
		next[n-1] = n - 1
		m.ResetCounters()
		ListRankContract(m, next)
		w, _ := m.Counters()
		return w
	}
	w1, w2 := work(1<<14), work(1<<15)
	if ratio := float64(w2) / float64(w1); ratio > 2.4 {
		t.Errorf("contraction ranking work ratio %.2f for doubled n, want ~2", ratio)
	}
	// The asymptotic signature: contraction work/n is flat while Wyllie
	// work/n grows by ~1 per doubling (it is ~log n). The absolute
	// crossover lies beyond practical n because contraction's constant
	// (~25 charged ops/element) exceeds log n here — an honest cost of the
	// optimal algorithm, reported in DESIGN.md.
	wyllie := func(n int) int64 {
		m := pram.NewSequential()
		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[i] = i + 1
		}
		next[n-1] = n - 1
		m.ResetCounters()
		ListRank(m, next)
		w, _ := m.Counters()
		return w
	}
	wy1, wy2 := wyllie(1<<14), wyllie(1<<15)
	contractGrowth := float64(w2) / float64(w1)
	wyllieGrowth := float64(wy2) / float64(wy1)
	if contractGrowth >= wyllieGrowth {
		t.Errorf("contraction growth %.3f not below Wyllie growth %.3f", contractGrowth, wyllieGrowth)
	}
}

func BenchmarkListRankWyllie(b *testing.B) {
	m := pram.NewSequential()
	const n = 1 << 15
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = n - 1
	b.SetBytes(n)
	for i := 0; i < b.N; i++ {
		ListRank(m, next)
	}
}

func BenchmarkListRankContract(b *testing.B) {
	m := pram.NewSequential()
	const n = 1 << 15
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = n - 1
	b.SetBytes(n)
	for i := 0; i < b.N; i++ {
		ListRankContract(m, next)
	}
}
