package par

import (
	"math/rand/v2"
	"testing"

	"repro/internal/pram"
)

// randomForest builds a pointer forest where parent indices are strictly
// smaller, plus self-loops at a few roots.
func randomForest(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := 0; i < n; i++ {
		if i == 0 || rng.IntN(10) == 0 {
			p[i] = i // root
		} else {
			p[i] = rng.IntN(i)
		}
	}
	return p
}

func seqRoot(p []int, i int) int {
	for p[i] != i {
		i = p[i]
	}
	return i
}

func TestPointerJumpRoots(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, m := range machines() {
		for _, n := range []int{1, 2, 17, 256, 5000} {
			p := randomForest(rng, n)
			roots := PointerJumpRoots(m, p)
			for i := 0; i < n; i++ {
				if roots[i] != seqRoot(p, i) {
					t.Fatalf("n=%d root[%d]=%d want %d", n, i, roots[i], seqRoot(p, i))
				}
			}
		}
	}
}

func TestListRankOnChain(t *testing.T) {
	for _, m := range machines() {
		for _, n := range []int{1, 2, 3, 100, 1024, 1025} {
			next := make([]int, n)
			for i := 0; i < n-1; i++ {
				next[i] = i + 1
			}
			next[n-1] = n - 1
			rank := ListRank(m, next)
			for i := 0; i < n; i++ {
				if rank[i] != int64(n-1-i) {
					t.Fatalf("n=%d rank[%d]=%d want %d", n, i, rank[i], n-1-i)
				}
			}
		}
	}
}

func TestListRankOnShuffledList(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	m := pram.New(4)
	const n = 2000
	order := rng.Perm(n)
	next := make([]int, n)
	for k := 0; k < n-1; k++ {
		next[order[k]] = order[k+1]
	}
	next[order[n-1]] = order[n-1]
	rank := ListRank(m, next)
	for k := 0; k < n; k++ {
		if rank[order[k]] != int64(n-1-k) {
			t.Fatalf("rank[order[%d]]=%d want %d", k, rank[order[k]], n-1-k)
		}
	}
}

func TestJumpTableSuccessor(t *testing.T) {
	m := pram.New(4)
	const n = 300
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = n - 1
	jt := NewJumpTable(m, next)
	for _, tc := range []struct{ start, hops, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 299, 299}, {0, 1000, 299},
		{100, 7, 107}, {250, 49, 299}, {250, 50, 299},
	} {
		if got := jt.Successor(tc.start, int64(tc.hops)); got != tc.want {
			t.Errorf("Successor(%d,%d)=%d want %d", tc.start, tc.hops, got, tc.want)
		}
	}
}

func TestParallelPathToRootMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, m := range machines() {
		for _, n := range []int{1, 2, 50, 1000} {
			// Build an increasing forest so paths terminate.
			next := make([]int, n)
			for i := 0; i < n-1; i++ {
				next[i] = i + 1 + rng.IntN(min(8, n-1-i))
				if next[i] >= n {
					next[i] = n - 1
				}
			}
			next[n-1] = n - 1
			want := PathToRoot(next, 0)
			got := ParallelPathToRoot(m, next, 0)
			if len(got) != len(want) {
				t.Fatalf("n=%d path len %d want %d", n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d path[%d]=%d want %d", n, i, got[i], want[i])
				}
			}
		}
	}
}
