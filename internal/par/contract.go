package par

import "repro/internal/pram"

// ListRankContract is work-optimal list ranking by random-mate contraction
// (Anderson–Miller style). In each round every alive element flips a coin;
// an element splices itself out when it shows heads and its successor
// (unless it is a terminal) shows tails — so no two adjacent elements ever
// contract together — and its predecessors absorb its hop weight. When
// everything has contracted, elements are reinserted in reverse round
// order. Expected O(n) work (a constant fraction contracts per round, and
// each round costs O(alive)) at O(log^2 n) depth (O(log n) rounds, each
// with a compaction scan).
//
// Coins come from a deterministic per-(round, element) hash, so output and
// cost ledger are reproducible — randomness affects only the round count,
// as in the paper's Las Vegas setting.
//
// The input may be an in-forest (several elements sharing a successor),
// exactly like ListRank: next[i] == i marks roots/terminals, and the
// result is the hop distance to the terminal. ListRankContract and
// ListRank (Wyllie doubling: O(n log n) work, O(log n) depth) compute the
// same function; choosing between them is the work/depth trade discussed
// in DESIGN.md.
func ListRankContract(m *pram.Machine, next []int) []int64 {
	n := len(next)
	rank := make([]int64, n)
	if n == 0 {
		return rank
	}
	nxt := m.GetInts(n)
	w := m.GetInt64s(n) // hops from i to nxt[i]
	m.ParallelFor(n, func(i int) {
		nxt[i] = next[i]
		if next[i] != i {
			w[i] = 1
		}
	})
	alive := Pack(m, n, func(i int) bool { return next[i] != i })

	type splice struct {
		elem int
		tail int
		hops int64
	}
	var history [][]splice
	contracting := m.GetBools(n)

	for round := 0; len(alive) > 0; round++ {
		r := round
		// Phase 1: decide who contracts. Safe against adjacent pairs: if
		// both i and j = nxt[i] are non-terminal, i needs heads(i) and
		// tails(j) while j needs heads(j).
		m.ParallelFor(len(alive), func(k int) {
			i := alive[k]
			if !coin(r, i) {
				return
			}
			j := nxt[i]
			if nxt[j] == j || !coin(r, j) {
				contracting[i] = true
			}
		})
		// Phase 2: predecessors absorb contracting successors. A
		// contracting element's own successor never contracts this round,
		// so one absorption step suffices; concurrent predecessors only
		// read the contracted element's fields.
		m.ParallelFor(len(alive), func(k int) {
			j := alive[k]
			if contracting[j] {
				return
			}
			if i := nxt[j]; i != j && contracting[i] {
				w[j] += w[i]
				nxt[j] = nxt[i]
			}
		})
		// Phase 3: one scan partitions the alive set into spliced-out and
		// surviving elements, records the splices, and resets the marks.
		flags := m.GetInt64s(len(alive))
		m.ParallelFor(len(alive), func(k int) {
			if contracting[alive[k]] {
				flags[k] = 1
			}
		})
		gone := ExclusiveScan(m, flags) // flags[k] = #contracted before k
		batch := make([]splice, gone)
		newAlive := m.GetInts(int(int64(len(alive)) - gone))
		m.ParallelFor(len(alive), func(k int) {
			i := alive[k]
			if contracting[i] {
				batch[flags[k]] = splice{elem: i, tail: nxt[i], hops: w[i]}
				contracting[i] = false
				return
			}
			newAlive[int64(k)-flags[k]] = i
		})
		m.PutInt64s(flags)
		m.PutInts(alive) // dead: survivors moved to newAlive
		history = append(history, batch)
		alive = newAlive
	}
	if len(history) > 0 {
		m.PutInts(alive) // the final (empty) round buffer
	}
	m.PutInts(nxt)
	m.PutInt64s(w)
	m.PutBools(contracting)
	// Expansion in reverse: a splice's tail was alive after its round (or
	// a terminal), so its rank is already final.
	for r := len(history) - 1; r >= 0; r-- {
		batch := history[r]
		m.ParallelFor(len(batch), func(k int) {
			s := batch[k]
			rank[s.elem] = rank[s.tail] + s.hops
		})
	}
	return rank
}

// coin returns a deterministic pseudo-random bit for (round, element)
// using a SplitMix64-style finalizer.
func coin(round, i int) bool {
	x := uint64(i)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x&1 == 1
}
