package par

import "repro/internal/pram"

// Pack returns the indices i in [0, n) for which keep(i) reports true, in
// increasing order. This is stream compaction: a flag array, an exclusive
// scan, and a scatter. Work O(n), depth O(log n).
func Pack(m *pram.Machine, n int, keep func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	flags := m.GetInt64s(n)
	m.ParallelFor(n, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ExclusiveScan(m, flags)
	out := make([]int, total)
	m.ParallelFor(n, func(i int) {
		var next int64
		if i+1 < n {
			next = flags[i+1]
		} else {
			next = total
		}
		if next != flags[i] {
			out[flags[i]] = i
		}
	})
	m.PutInt64s(flags)
	return out
}

// PackInt64 compacts the values a[i] with keep(i) true, preserving order.
func PackInt64(m *pram.Machine, a []int64, keep func(i int) bool) []int64 {
	idx := Pack(m, len(a), keep)
	out := make([]int64, len(idx))
	m.ParallelFor(len(idx), func(j int) { out[j] = a[idx[j]] })
	return out
}

// Count returns the number of indices in [0, n) satisfying pred. Work O(n),
// depth O(log n).
func Count(m *pram.Machine, n int, pred func(i int) bool) int64 {
	if n == 0 {
		return 0
	}
	flags := m.GetInt64s(n)
	defer m.PutInt64s(flags)
	m.ParallelFor(n, func(i int) {
		if pred(i) {
			flags[i] = 1
		}
	})
	return Reduce(m, flags, 0, func(x, y int64) int64 { return x + y })
}
