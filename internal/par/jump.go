package par

import "repro/internal/pram"

// PointerJumpRoots resolves, for every node of a pointer forest, the root of
// its chain. parent[i] == i marks a root. The forest must be acyclic apart
// from the self-loops at roots. Work O(n log n) (Wyllie-style pointer
// doubling), depth O(log n). The input slice is not modified.
func PointerJumpRoots(m *pram.Machine, parent []int) []int {
	n := len(parent)
	p := m.GetInts(n)
	m.ParallelFor(n, func(i int) { p[i] = parent[i] })
	q := m.GetInts(n)
	for {
		changed := pram.NewCells(1)
		m.ParallelFor(n, func(i int) {
			q[i] = p[p[i]]
			if q[i] != p[i] {
				changed.Write(0, 1)
			}
		})
		p, q = q, p
		if changed.Read(0) == 0 {
			// Ownership of p transfers to the caller (it simply never
			// returns to the arena); q is scratch and gets recycled.
			m.PutInts(q)
			return p
		}
	}
}

// ListRank computes, for each element of a linked list given by next
// pointers, its distance to the end of the list. next[i] == i marks the
// terminal element (rank 0). Work O(n log n), depth O(log n) — Wyllie's
// algorithm, which is what the paper's "many methods, e.g. tree contraction,
// level ancestors, Euler tour techniques" boils down to at this scale.
func ListRank(m *pram.Machine, next []int) []int64 {
	n := len(next)
	rank := m.GetInt64s(n)
	p := m.GetInts(n)
	m.ParallelFor(n, func(i int) {
		p[i] = next[i]
		if next[i] != i {
			rank[i] = 1
		}
	})
	q := m.GetInts(n)
	r2 := m.GetInt64s(n)
	for {
		changed := pram.NewCells(1)
		m.ParallelFor(n, func(i int) {
			r2[i] = rank[i] + rank[p[i]]
			q[i] = p[p[i]]
			if q[i] != p[i] {
				changed.Write(0, 1)
			}
		})
		p, q = q, p
		rank, r2 = r2, rank
		if changed.Read(0) == 0 {
			// rank transfers to the caller; the other three are scratch.
			m.PutInts(p)
			m.PutInts(q)
			m.PutInt64s(r2)
			return rank
		}
	}
}

// JumpTable holds doubling successor pointers over an out-degree-1 graph:
// level k maps each node to its 2^k-th successor (saturating at self-loop
// terminals). Building it costs O(n log n) work and O(log n) depth; it then
// answers "k-th successor" queries in O(log n) sequential hops.
type JumpTable struct {
	up [][]int
}

// NewJumpTable builds a doubling table over next (next[i] == i terminates).
func NewJumpTable(m *pram.Machine, next []int) *JumpTable {
	n := len(next)
	levels := 1
	for (1 << levels) < n {
		levels++
	}
	up := make([][]int, levels+1)
	up[0] = make([]int, n)
	m.ParallelFor(n, func(i int) { up[0][i] = next[i] })
	for k := 1; k <= levels; k++ {
		up[k] = make([]int, n)
		prev, cur := up[k-1], up[k]
		m.ParallelFor(n, func(i int) { cur[i] = prev[prev[i]] })
	}
	return &JumpTable{up: up}
}

// Successor returns the node reached from i after t hops (saturating at the
// terminal).
func (j *JumpTable) Successor(i int, t int64) int {
	for k := 0; t > 0 && k < len(j.up); k++ {
		if t&1 == 1 {
			i = j.up[k][i]
		}
		t >>= 1
	}
	return i
}

// PathToRoot returns the nodes on the chain from start following next until
// the self-loop terminal, inclusive of both ends, sequentially. Used by
// oracles and tests.
func PathToRoot(next []int, start int) []int {
	var path []int
	for i := start; ; i = next[i] {
		path = append(path, i)
		if next[i] == i {
			return path
		}
	}
}

// ParallelPathToRoot extracts the same path as PathToRoot but with O(log n)
// depth: list-rank the forest, build a jump table, and have one virtual
// processor per path position jump to its node. Work O(n log n). This is the
// parallel path-extraction step the paper invokes for pulling the parse out
// of its parse tree (§4.1, §5).
func ParallelPathToRoot(m *pram.Machine, next []int, start int) []int {
	rank := ListRank(m, next)
	jt := NewJumpTable(m, next)
	length := rank[start] + 1
	m.PutInt64s(rank)
	out := make([]int, length)
	m.ParallelForCost(int(length), int64(len(jt.up)), func(t int) {
		out[t] = jt.Successor(start, int64(t))
	})
	return out
}
