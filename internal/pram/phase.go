package pram

import "sync"

// Counters is a snapshot of the machine's ledger.
type Counters struct {
	Work  int64
	Depth int64
}

// Phase is a named segment of the ledger, recorded by RecordPhase.
type Phase struct {
	Name string
	Counters
}

// Snapshot returns the current ledger values, for later use with
// RecordPhase. Call between super-steps.
func (m *Machine) Snapshot() Counters {
	return Counters{Work: m.work.Load(), Depth: m.depth.Load()}
}

// RecordPhase attributes the ledger delta since the given snapshot to a
// named phase. Algorithms use it to let experiments split, e.g., suffix-
// tree construction from the paper's own steps. Phases with equal names
// accumulate.
func (m *Machine) RecordPhase(name string, since Counters) {
	now := m.Snapshot()
	m.phaseMu.Lock()
	defer m.phaseMu.Unlock()
	for i := range m.phases {
		if m.phases[i].Name == name {
			m.phases[i].Work += now.Work - since.Work
			m.phases[i].Depth += now.Depth - since.Depth
			return
		}
	}
	m.phases = append(m.phases, Phase{Name: name, Counters: Counters{
		Work:  now.Work - since.Work,
		Depth: now.Depth - since.Depth,
	}})
}

// Phases returns the recorded phases in first-recorded order.
func (m *Machine) Phases() []Phase {
	m.phaseMu.Lock()
	defer m.phaseMu.Unlock()
	out := make([]Phase, len(m.phases))
	copy(out, m.phases)
	return out
}

// ResetPhases clears the recorded phases (the main counters are separate;
// see ResetCounters).
func (m *Machine) ResetPhases() {
	m.phaseMu.Lock()
	m.phases = nil
	m.phaseMu.Unlock()
}

// phaseState is embedded in Machine (declared here to keep machine.go
// focused on execution).
type phaseState struct {
	phaseMu sync.Mutex
	phases  []Phase
}
