package pram

import (
	"math/bits"
	"sync"
)

// Scratch arena
//
// Round-based algorithms (list contraction, doubling scans, radix passes)
// allocate the same flag/batch/histogram slices once per round for O(log n)
// rounds; across internal/par that was ~50 make([]T) sites feeding the GC.
// The arena recycles those buffers: Get*(n) returns a zeroed length-n slice
// drawn from a size-class pool, Put* returns it. The API hangs off Machine
// so call sites read as part of the execution model, but the backing pools
// are process-wide sync.Pools — scratch released by a per-request Machine in
// the serving layer is immediately reusable by the next request, and the
// pools drain under memory pressure like any sync.Pool.
//
// Rules, mirroring PRAM shared-memory discipline:
//
//   - Get and Put only between super-steps (never inside a ParallelFor
//     body — bodies are the virtual processors, the arena is the host).
//   - A buffer must not be used after Put. Put of a slice not obtained from
//     Get is allowed (it is simply adopted if its capacity fits a class).
//   - Returned slices are zeroed, exactly like make([]T, n), so flag-array
//     call sites can switch without auditing their init assumptions.
//
// The arena never changes Work/Depth: zeroing happens on the host, like the
// allocation it replaces (the PRAM model charges algorithmic steps, not
// host memory management — see DESIGN.md §3).

// arenaClasses covers 2^0 .. 2^(arenaClasses-1) element buffers; larger
// requests fall through to plain make and are dropped on Put.
const arenaClasses = 28 // up to 2^27 = 134M elements per class

// typedArena is a size-class pool set for one element type.
type typedArena[T any] struct {
	classes [arenaClasses]sync.Pool
}

// class returns the pool index for a request of n elements: the smallest
// power of two >= n.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func (a *typedArena[T]) get(n int) []T {
	if n < 0 {
		panic("pram: negative scratch length")
	}
	c := class(n)
	if c < arenaClasses {
		if v := a.classes[c].Get(); v != nil {
			s := (*(v.(*[]T)))[:n]
			var zero T
			for i := range s {
				s[i] = zero
			}
			return s
		}
		return make([]T, n, 1<<c)
	}
	return make([]T, n)
}

func (a *typedArena[T]) put(s []T) {
	c := cap(s)
	if c == 0 {
		return
	}
	k := class(c)
	if 1<<k != c || k >= arenaClasses {
		// Only exact power-of-two capacities are pooled so every pooled
		// buffer of class k can serve any request of size (2^(k-1), 2^k].
		return
	}
	s = s[:c]
	a.classes[k].Put(&s)
}

// Process-wide backing pools, one per element type the algorithms use.
var (
	arenaInt64 typedArena[int64]
	arenaInt   typedArena[int]
	arenaInt32 typedArena[int32]
	arenaByte  typedArena[byte]
	arenaBool  typedArena[bool]
)

// GetInt64s returns a zeroed scratch []int64 of length n. Pair with
// PutInt64s when the buffer is dead.
func (m *Machine) GetInt64s(n int) []int64 { return arenaInt64.get(n) }

// PutInt64s recycles a scratch buffer obtained from GetInt64s.
func (m *Machine) PutInt64s(s []int64) { arenaInt64.put(s) }

// GetInts returns a zeroed scratch []int of length n.
func (m *Machine) GetInts(n int) []int { return arenaInt.get(n) }

// PutInts recycles a scratch buffer obtained from GetInts.
func (m *Machine) PutInts(s []int) { arenaInt.put(s) }

// GetInt32s returns a zeroed scratch []int32 of length n.
func (m *Machine) GetInt32s(n int) []int32 { return arenaInt32.get(n) }

// PutInt32s recycles a scratch buffer obtained from GetInt32s.
func (m *Machine) PutInt32s(s []int32) { arenaInt32.put(s) }

// GetBytes returns a zeroed scratch []byte of length n.
func (m *Machine) GetBytes(n int) []byte { return arenaByte.get(n) }

// PutBytes recycles a scratch buffer obtained from GetBytes.
func (m *Machine) PutBytes(s []byte) { arenaByte.put(s) }

// GetBools returns a zeroed scratch []bool of length n.
func (m *Machine) GetBools(n int) []bool { return arenaBool.get(n) }

// PutBools recycles a scratch buffer obtained from GetBools.
func (m *Machine) PutBools(s []bool) { arenaBool.put(s) }
