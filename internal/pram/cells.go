package pram

import (
	"fmt"
	"sync/atomic"
)

// Cells is a shared-memory array supporting the CRCW write-conflict rules
// used by the paper's algorithms. All operations are safe under concurrent
// use from within a ParallelFor body.
//
// Conflict rules:
//
//   - Write      — "arbitrary": when several processors write the same cell
//     in one super-step, one of them wins. Implemented as an atomic store;
//     the Go runtime's scheduling picks the winner, which is a legitimate
//     adversary for the arbitrary rule.
//   - WriteMax / WriteMin — "combining": the cell ends up holding the
//     max/min of the old value and all written values (CAS loop).
//   - WritePriority — "priority": among concurrent writers the one with the
//     smallest priority value wins. Encoded as WriteMin over (prio, value)
//     pairs packed by the caller, or used directly when value == priority.
type Cells struct {
	a []int64
}

// NewCells returns n cells initialized to zero.
func NewCells(n int) *Cells { return &Cells{a: make([]int64, n)} }

// NewCellsFilled returns n cells initialized to v.
func NewCellsFilled(n int, v int64) *Cells {
	c := &Cells{a: make([]int64, n)}
	for i := range c.a {
		c.a[i] = v
	}
	return c
}

// Len returns the number of cells.
func (c *Cells) Len() int { return len(c.a) }

// Read returns the value of cell i.
func (c *Cells) Read(i int) int64 { return atomic.LoadInt64(&c.a[i]) }

// Write stores v into cell i under the arbitrary-CRCW rule.
func (c *Cells) Write(i int, v int64) { atomic.StoreInt64(&c.a[i], v) }

// WriteMax raises cell i to v if v is larger. Returns true if the cell
// changed.
func (c *Cells) WriteMax(i int, v int64) bool {
	for {
		old := atomic.LoadInt64(&c.a[i])
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapInt64(&c.a[i], old, v) {
			return true
		}
	}
}

// WriteMin lowers cell i to v if v is smaller. Returns true if the cell
// changed.
func (c *Cells) WriteMin(i int, v int64) bool {
	for {
		old := atomic.LoadInt64(&c.a[i])
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(&c.a[i], old, v) {
			return true
		}
	}
}

// CompareAndSwap performs an atomic CAS on cell i.
func (c *Cells) CompareAndSwap(i int, old, new int64) bool {
	return atomic.CompareAndSwapInt64(&c.a[i], old, new)
}

// Add atomically adds delta to cell i and returns the new value.
func (c *Cells) Add(i int, delta int64) int64 {
	return atomic.AddInt64(&c.a[i], delta)
}

// Snapshot copies the cells into a fresh []int64. Only meaningful between
// super-steps.
func (c *Cells) Snapshot() []int64 {
	out := make([]int64, len(c.a))
	for i := range c.a {
		out[i] = atomic.LoadInt64(&c.a[i])
	}
	return out
}

// Fill sets every cell to v (not atomic across the array; call between
// super-steps only).
func (c *Cells) Fill(v int64) {
	for i := range c.a {
		atomic.StoreInt64(&c.a[i], v)
	}
}

// priorityPack packs a (priority, payload) pair into one int64 so that
// WriteMin implements the priority-CRCW rule: lower priority wins, and ties
// are broken by payload. Priorities and payloads must fit in 31 bits.
const priorityShift = 31
const priorityMask = (1 << priorityShift) - 1

// PackPriority encodes a priority/payload pair for use with WriteMin. Both
// values must lie in [0, 2^31): anything wider would silently collide with
// another pair's encoding (the payload would bleed into the priority bits),
// so out-of-range arguments panic instead of corrupting the CRCW
// resolution.
func PackPriority(prio, payload int64) int64 {
	if prio < 0 || prio > priorityMask {
		panic(fmt.Sprintf("pram: PackPriority priority %d outside [0, 2^%d)", prio, priorityShift))
	}
	if payload < 0 || payload > priorityMask {
		panic(fmt.Sprintf("pram: PackPriority payload %d outside [0, 2^%d)", payload, priorityShift))
	}
	return prio<<priorityShift | payload
}

// UnpackPriority decodes a value produced by PackPriority.
func UnpackPriority(v int64) (prio, payload int64) {
	return v >> priorityShift, v & priorityMask
}
