package pram

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		m := New(procs)
		m.SetGrain(7) // tiny grain to force multi-chunk scheduling
		const n = 10_000
		hits := make([]int32, n)
		m.ParallelFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("procs=%d index %d executed %d times", procs, i, h)
			}
		}
	}
}

func TestParallelForZeroAndSmall(t *testing.T) {
	m := New(4)
	m.ParallelFor(0, func(int) { t.Fatal("body called for n=0") })
	ran := false
	m.ParallelFor(1, func(i int) {
		if i != 0 {
			t.Fatalf("got index %d", i)
		}
		ran = true
	})
	if !ran {
		t.Fatal("body not called for n=1")
	}
}

func TestWorkDepthAccounting(t *testing.T) {
	m := New(4)
	m.ParallelFor(100, func(int) {})
	m.ParallelFor(50, func(int) {})
	m.ParallelForCost(10, 3, func(int) {})
	m.Account(7, 2)
	if w := m.Work(); w != 100+50+30+7 {
		t.Errorf("work = %d, want %d", w, 187)
	}
	if d := m.Depth(); d != 1+1+3+2 {
		t.Errorf("depth = %d, want %d", d, 7)
	}
	m.ResetCounters()
	if w, d := m.Counters(); w != 0 || d != 0 {
		t.Errorf("after reset: work=%d depth=%d", w, d)
	}
}

func TestSequentialMachineIsOrdered(t *testing.T) {
	m := NewSequential()
	var seen []int
	m.ParallelFor(100, func(i int) { seen = append(seen, i) })
	for i, v := range seen {
		if v != i {
			t.Fatalf("sequential machine ran out of order at %d: got %d", i, v)
		}
	}
}

func TestNestedParallelForPanics(t *testing.T) {
	m := NewSequential()
	defer func() {
		if recover() == nil {
			t.Fatal("nested ParallelFor did not panic")
		}
	}()
	m.ParallelFor(1, func(int) {
		m.ParallelFor(1, func(int) {})
	})
}

func TestNegativeNPanics(t *testing.T) {
	m := NewSequential()
	defer func() {
		if recover() == nil {
			t.Fatal("negative n did not panic")
		}
	}()
	m.ParallelFor(-1, func(int) {})
}

func TestBadCostPanics(t *testing.T) {
	m := NewSequential()
	defer func() {
		if recover() == nil {
			t.Fatal("cost 0 did not panic")
		}
	}()
	m.ParallelForCost(1, 0, func(int) {})
}

func TestDoRunsAllBranches(t *testing.T) {
	m := New(4)
	var a, b, c atomic.Bool
	m.Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a branch")
	}
	if m.Depth() != 1 {
		t.Fatalf("Do depth = %d, want 1", m.Depth())
	}
}

func TestCellsWriteMaxMin(t *testing.T) {
	m := New(8)
	c := NewCellsFilled(1, -1<<62)
	lo := NewCellsFilled(1, 1<<62)
	m.ParallelFor(10_000, func(i int) {
		c.WriteMax(0, int64(i))
		lo.WriteMin(0, int64(i))
	})
	if got := c.Read(0); got != 9999 {
		t.Errorf("WriteMax result = %d, want 9999", got)
	}
	if got := lo.Read(0); got != 0 {
		t.Errorf("WriteMin result = %d, want 0", got)
	}
}

func TestCellsArbitraryWriteIsOneOfTheWriters(t *testing.T) {
	m := New(8)
	c := NewCells(1)
	const n = 4096
	m.ParallelFor(n, func(i int) { c.Write(0, int64(i)+1) })
	got := c.Read(0)
	if got < 1 || got > n {
		t.Errorf("arbitrary write produced %d, not a written value", got)
	}
}

func TestCellsSnapshotAndFill(t *testing.T) {
	c := NewCells(5)
	c.Fill(42)
	s := c.Snapshot()
	for i, v := range s {
		if v != 42 {
			t.Fatalf("cell %d = %d after Fill(42)", i, v)
		}
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPriorityPackRoundTrip(t *testing.T) {
	f := func(prio, payload int32) bool {
		p := int64(prio) & priorityMask
		q := int64(payload) & priorityMask
		gp, gq := UnpackPriority(PackPriority(p, q))
		return gp == p && gq == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPriorityWriteMinSelectsSmallestPriority(t *testing.T) {
	m := New(8)
	c := NewCellsFilled(1, 1<<62)
	const n = 1000
	m.ParallelFor(n, func(i int) {
		// priority i, payload i+1; the winner must be priority 0.
		c.WriteMin(0, PackPriority(int64(i), int64(i+1)))
	})
	prio, payload := UnpackPriority(c.Read(0))
	if prio != 0 || payload != 1 {
		t.Errorf("priority write winner = (%d,%d), want (0,1)", prio, payload)
	}
}

func TestConflictDetector(t *testing.T) {
	d := NewConflictDetector()
	d.Note(3)
	d.Note(4)
	if c := d.StepDone(); len(c) != 0 {
		t.Fatalf("false conflict: %v", c)
	}
	d.Note(5)
	d.Note(5)
	d.Note(6)
	c := d.StepDone()
	if len(c) != 1 || c[0] != 5 {
		t.Fatalf("conflicts = %v, want [5]", c)
	}
	// MustExclusive panics on conflicts.
	d.Note(1)
	d.Note(1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustExclusive did not panic")
		}
	}()
	d.MustExclusive()
}

func TestAccountingDeterministicAcrossProcs(t *testing.T) {
	run := func(procs int) (int64, int64) {
		m := New(procs)
		for r := 0; r < 10; r++ {
			m.ParallelFor(1000, func(int) {})
		}
		return m.Counters()
	}
	w1, d1 := run(1)
	w8, d8 := run(8)
	if w1 != w8 || d1 != d8 {
		t.Errorf("counters depend on procs: (%d,%d) vs (%d,%d)", w1, d1, w8, d8)
	}
}

func TestPhaseLedger(t *testing.T) {
	m := New(2)
	s0 := m.Snapshot()
	m.ParallelFor(100, func(int) {})
	m.RecordPhase("a", s0)
	s1 := m.Snapshot()
	m.ParallelForCost(10, 2, func(int) {})
	m.RecordPhase("b", s1)
	s2 := m.Snapshot()
	m.ParallelFor(50, func(int) {})
	m.RecordPhase("a", s2) // accumulates into "a"
	ph := m.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %v", ph)
	}
	if ph[0].Name != "a" || ph[0].Work != 150 || ph[0].Depth != 2 {
		t.Fatalf("phase a = %+v", ph[0])
	}
	if ph[1].Name != "b" || ph[1].Work != 20 || ph[1].Depth != 2 {
		t.Fatalf("phase b = %+v", ph[1])
	}
	m.ResetPhases()
	if len(m.Phases()) != 0 {
		t.Fatal("phases not cleared")
	}
	// Phase sums must not exceed the global ledger.
	w, _ := m.Counters()
	if w != 170 {
		t.Fatalf("global work = %d", w)
	}
}
