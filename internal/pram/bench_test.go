package pram

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// benchBody is a small but non-trivial body: enough arithmetic that the
// compiler cannot elide it, little enough that scheduling overhead shows.
func benchBody(dst []int64) func(i int) {
	return func(i int) { dst[i] = int64(i)*2654435761 + 17 }
}

// BenchmarkSuperStep measures the cost of one ParallelFor super-step for
// the pooled and spawn engines across step sizes. The pooled engine's
// advantage grows with the number of steps because workers stay parked
// between them instead of being respawned.
func BenchmarkSuperStep(b *testing.B) {
	for _, engine := range []struct {
		name string
		e    Engine
	}{{"pooled", EnginePooled}, {"spawn", EngineSpawn}} {
		for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
			b.Run(fmt.Sprintf("engine=%s/n=%d", engine.name, n), func(b *testing.B) {
				m := NewWithEngine(0, engine.e)
				defer m.Close()
				dst := make([]int64, n)
				body := benchBody(dst)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.ParallelFor(n, body)
				}
			})
		}
	}
}

// BenchmarkManySmallSteps is the many-super-step regime that dominates the
// round loops of list ranking and tree contraction: 64 consecutive steps of
// n=4096 each. This is where spawn-per-step overhead compounds.
func BenchmarkManySmallSteps(b *testing.B) {
	const steps, n = 64, 4096
	for _, engine := range []struct {
		name string
		e    Engine
	}{{"pooled", EnginePooled}, {"spawn", EngineSpawn}} {
		b.Run("engine="+engine.name, func(b *testing.B) {
			m := NewWithEngine(0, engine.e)
			defer m.Close()
			m.SetGrain(64) // force fan-out even for the small steps
			dst := make([]int64, n)
			body := benchBody(dst)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := 0; s < steps; s++ {
					m.ParallelFor(n, body)
				}
			}
		})
	}
}

// BenchmarkProcsSweep sweeps the simulated processor count from 1 to
// GOMAXPROCS on a fixed-size step, showing scaling of the pooled engine.
func BenchmarkProcsSweep(b *testing.B) {
	const n = 1 << 18
	maxp := runtime.GOMAXPROCS(0)
	for procs := 1; procs <= maxp; procs *= 2 {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			m := New(procs)
			defer m.Close()
			dst := make([]int64, n)
			body := benchBody(dst)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ParallelFor(n, body)
			}
		})
		if procs == maxp {
			break
		}
		if procs*2 > maxp && procs != maxp {
			procs = maxp / 2 // ensure the final iteration runs at maxp
		}
	}
}

// BenchmarkInlineSmallStep measures the adaptive-grain inline path: steps
// too small to be worth fanning out must cost no more than the plain loop.
func BenchmarkInlineSmallStep(b *testing.B) {
	m := New(0)
	defer m.Close()
	dst := make([]int64, 256)
	body := benchBody(dst)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ParallelFor(len(dst), body)
	}
}

// BenchmarkArenaGetPut measures scratch-buffer round-trips against the
// make() they replace.
func BenchmarkArenaGetPut(b *testing.B) {
	const n = 1 << 16
	m := NewSequential()
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := m.GetInt64s(n)
			s[0] = 1
			m.PutInt64s(s)
		}
	})
	b.Run("make", func(b *testing.B) {
		var sink atomic.Int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := make([]int64, n)
			s[0] = 1
			sink.Store(s[0])
		}
	})
}
