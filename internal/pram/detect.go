package pram

import (
	"fmt"
	"sync"
)

// ConflictDetector records writes issued during one super-step and reports
// exclusive-write (EREW) violations. It exists for tests and failure
// injection: algorithms that claim to be conflict-free per step can be run
// against the detector, and algorithms that rely on CRCW semantics can be
// shown to actually exercise them.
//
// The detector is deliberately heavyweight (a mutex-guarded map); it is not
// part of any benchmarked code path.
type ConflictDetector struct {
	mu      sync.Mutex
	writers map[int]int // cell index -> count of writes this step
	clashes []int       // cells written more than once, in detection order
}

// NewConflictDetector returns an empty detector.
func NewConflictDetector() *ConflictDetector {
	return &ConflictDetector{writers: make(map[int]int)}
}

// Note records a write to cell i by the current virtual processor.
func (d *ConflictDetector) Note(i int) {
	d.mu.Lock()
	d.writers[i]++
	if d.writers[i] == 2 {
		d.clashes = append(d.clashes, i)
	}
	d.mu.Unlock()
}

// StepDone ends the current super-step, returning the cells that received
// concurrent writes during it (nil if the step was exclusive-write).
func (d *ConflictDetector) StepDone() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.clashes
	d.clashes = nil
	d.writers = make(map[int]int)
	return out
}

// MustExclusive ends the step and panics if any cell was written twice.
func (d *ConflictDetector) MustExclusive() {
	if c := d.StepDone(); len(c) > 0 {
		panic(fmt.Sprintf("pram: EREW violation on cells %v", c))
	}
}
