package pram

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPooledCoversEveryIndexOnceAdaptiveGrain(t *testing.T) {
	for _, procs := range []int{2, 3, 8} {
		for _, n := range []int{1, 63, 4096, 100_000} {
			m := New(procs)
			hits := make([]int32, n)
			m.ParallelFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("procs=%d n=%d index %d executed %d times", procs, n, i, h)
				}
			}
			m.Close()
		}
	}
}

func TestPoolReusedAcrossSuperSteps(t *testing.T) {
	m := New(4)
	defer m.Close()
	m.SetGrain(64)
	const n, rounds = 1 << 14, 20
	var total atomic.Int64
	for r := 0; r < rounds; r++ {
		m.ParallelFor(n, func(i int) { total.Add(1) })
	}
	if got := total.Load(); got != n*rounds {
		t.Fatalf("ran %d bodies, want %d", got, n*rounds)
	}
	if e := m.Epochs(); e != rounds {
		t.Fatalf("pool dispatched %d epochs, want %d", e, rounds)
	}
}

func TestSmallStepsRunInlineUnderAdaptiveGrain(t *testing.T) {
	m := New(8)
	defer m.Close()
	m.ParallelFor(100, func(int) {}) // 100 work units < minParallelWork
	if e := m.Epochs(); e != 0 {
		t.Fatalf("tiny step went through the pool (%d epochs)", e)
	}
	m.ParallelForCost(100, 1000, func(int) {}) // 100k units: must parallelize
	if e := m.Epochs(); e != 1 {
		t.Fatalf("costly step did not go through the pool (%d epochs)", e)
	}
}

func TestCloseStopsWorkersAndIsIdempotent(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(8)
	m.SetGrain(1)
	m.ParallelFor(1024, func(int) {}) // force worker spawn
	m.Close()
	m.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("workers still alive after Close: %d goroutines, started with %d", g, before)
	}
}

// TestPoolProtocolDirect drives the publisher/worker protocol with real
// parked workers regardless of GOMAXPROCS (Machine caps helpers at
// GOMAXPROCS-1, which would leave the channel handoff unexercised on a
// single-core host — and unwatched by the race detector).
func TestPoolProtocolDirect(t *testing.T) {
	p := newPool(3)
	defer p.shutdown()
	const n = 1 << 14
	for round := 0; round < 50; round++ {
		hits := make([]int32, n)
		p.run(n, 64, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d: index %d executed %d times", round, i, h)
			}
		}
	}
	if e := p.epoch.Load(); e != 50 {
		t.Fatalf("epochs = %d, want 50", e)
	}
	// Fewer chunks than workers: only chunks-1 helpers may be woken.
	hits := make([]int32, 100)
	p.run(100, 64, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("small step: index %d executed %d times", i, h)
		}
	}
	p.shutdown()
	p.shutdown() // idempotent
}

func TestCloseSequentialIsNoop(t *testing.T) {
	m := NewSequential()
	m.Close()
	m.ParallelFor(10, func(int) {}) // still usable: no pool involved
}

func TestSpawnEngineMatchesPooled(t *testing.T) {
	const n = 1 << 15
	run := func(m *Machine) ([]int64, int64, int64) {
		defer m.Close()
		m.SetGrain(7)
		out := make([]int64, n)
		m.ParallelFor(n, func(i int) { out[i] = int64(i) * 3 })
		m.ParallelForCost(n/2, 5, func(i int) { out[i] += 1 })
		w, d := m.Counters()
		return out, w, d
	}
	a, wa, da := run(NewWithEngine(4, EnginePooled))
	b, wb, db := run(NewWithEngine(4, EngineSpawn))
	if wa != wb || da != db {
		t.Fatalf("engines disagree on ledger: pooled (%d,%d) spawn (%d,%d)", wa, da, wb, db)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("engines disagree at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAdaptiveGrainBounds(t *testing.T) {
	m := New(4)
	defer m.Close()
	cases := []struct {
		n     int
		cost  int64
		check func(g int) bool
	}{
		{100, 1, func(g int) bool { return g == minGrain }},
		{1 << 20, 1, func(g int) bool { return g == maxChunkWork }}, // unit cost: chunk = work cap
		{1 << 20, 1 << 30, func(g int) bool { return g == 1 }},      // cost cap floor
		{1 << 14, 64, func(g int) bool { return g == maxChunkWork/64 }},
	}
	for _, c := range cases {
		if g := m.grainFor(c.n, c.cost); !c.check(g) {
			t.Errorf("grainFor(%d, %d) = %d", c.n, c.cost, g)
		}
	}
	m.SetGrain(7)
	if g := m.grainFor(1<<20, 1); g != 7 {
		t.Errorf("explicit grain not honored: got %d", g)
	}
	m.SetGrain(0)
	if g := m.grainFor(1<<20, 1); g == 7 {
		t.Error("SetGrain(0) did not restore adaptive mode")
	}
}

func TestPackPriorityPanicsOutOfRange(t *testing.T) {
	cases := []struct {
		name          string
		prio, payload int64
	}{
		{"prio negative", -1, 0},
		{"prio too wide", 1 << 31, 0},
		{"payload negative", 0, -1},
		{"payload too wide", 0, 1 << 31},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("PackPriority(%d, %d) did not panic", c.prio, c.payload)
				}
			}()
			PackPriority(c.prio, c.payload)
		})
	}
	// Boundary values must still round-trip.
	p, q := UnpackPriority(PackPriority(priorityMask, priorityMask))
	if p != priorityMask || q != priorityMask {
		t.Fatalf("boundary round-trip = (%d,%d)", p, q)
	}
}
