// Package pram simulates an arbitrary CRCW PRAM on top of goroutines.
//
// The paper's algorithms are stated in the work/depth model of the
// concurrent-read concurrent-write PRAM with the "arbitrary" write-conflict
// rule. Real hardware offers neither synchronous processors nor unit-cost
// shared memory, so this package provides a faithful *cost simulator*:
//
//   - A Machine executes ParallelFor(n, body) as one PRAM super-step in
//     which n virtual processors each run body once. The bodies execute on a
//     pool of physical worker goroutines.
//   - The Machine counts Depth (number of super-steps, the PRAM "time") and
//     Work (total virtual-processor operations). These counters are the
//     quantities the paper's theorems bound, and they are what the
//     benchmark harness reports.
//   - Concurrent writes are expressed through Cells (see cells.go), whose
//     atomic operations realize the arbitrary / max / min / priority
//     conflict-resolution rules without data races.
//
// A Machine with Procs == 1 degenerates to a deterministic sequential
// executor, which tests use as the reference for the parallel schedules.
package pram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Machine is a simulated CRCW PRAM instance. The zero value is not usable;
// construct one with New or NewSequential.
type Machine struct {
	procs int
	grain int

	depth atomic.Int64
	work  atomic.Int64

	// inStep guards against nested super-steps. A PRAM super-step is flat:
	// spawning a parallel loop from inside a virtual processor would make
	// the depth accounting meaningless, so it panics instead.
	inStep atomic.Bool

	phaseState
}

// DefaultGrain is the number of virtual processors a physical worker claims
// at a time. It trades scheduling overhead against load balance; the value
// only affects wall-clock time, never the Work/Depth counters.
const DefaultGrain = 2048

// New returns a Machine backed by procs physical worker goroutines.
// procs <= 0 selects runtime.GOMAXPROCS(0).
func New(procs int) *Machine {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	return &Machine{procs: procs, grain: DefaultGrain}
}

// NewSequential returns a Machine that executes every super-step on the
// calling goroutine in index order. Counters behave identically to the
// parallel machine; only the schedule is serial.
func NewSequential() *Machine { return &Machine{procs: 1, grain: DefaultGrain} }

// Procs reports the number of physical workers.
func (m *Machine) Procs() int { return m.procs }

// SetGrain overrides the work-chunking granularity. Intended for tests and
// benchmarks; pass g <= 0 to restore the default.
func (m *Machine) SetGrain(g int) {
	if g <= 0 {
		g = DefaultGrain
	}
	m.grain = g
}

// Depth returns the number of PRAM super-steps executed so far.
func (m *Machine) Depth() int64 { return m.depth.Load() }

// Work returns the total number of virtual-processor operations charged so
// far.
func (m *Machine) Work() int64 { return m.work.Load() }

// ResetCounters zeroes the Work and Depth counters (e.g. to separate a
// preprocessing phase from a query phase in an experiment).
func (m *Machine) ResetCounters() {
	m.depth.Store(0)
	m.work.Store(0)
}

// Counters returns (work, depth) as a single snapshot.
func (m *Machine) Counters() (work, depth int64) {
	return m.work.Load(), m.depth.Load()
}

// Account charges extra work and depth without running anything. Algorithms
// use it for sequential-within-window phases whose cost must still appear in
// the PRAM ledger (e.g. the L sequential ExtendLeft steps inside a window in
// the paper's Step 1B).
func (m *Machine) Account(work, depth int64) {
	if work > 0 {
		m.work.Add(work)
	}
	if depth > 0 {
		m.depth.Add(depth)
	}
}

// ParallelFor runs body(i) for every i in [0, n) as a single PRAM
// super-step: Depth increases by 1 and Work by n. The body must be safe to
// run concurrently with itself; writes to shared data must go through Cells
// (or be provably per-index disjoint). The call returns after all n virtual
// processors finish, i.e. there is an implicit barrier, exactly as on a
// synchronous PRAM.
func (m *Machine) ParallelFor(n int, body func(i int)) {
	m.ParallelForCost(n, 1, body)
}

// ParallelForCost is ParallelFor where each virtual processor performs cost
// unit operations: Depth increases by cost and Work by n*cost. Use it when a
// body performs a non-constant but uniform amount of local work (for
// example, a length-L sequential scan per window).
func (m *Machine) ParallelForCost(n int, cost int64, body func(i int)) {
	if n < 0 {
		panic(fmt.Sprintf("pram: ParallelFor with negative n=%d", n))
	}
	if cost < 1 {
		panic(fmt.Sprintf("pram: ParallelForCost with cost=%d < 1", cost))
	}
	if n == 0 {
		return
	}
	if m.inStep.Swap(true) {
		panic("pram: nested ParallelFor inside a super-step body")
	}
	defer m.inStep.Store(false)

	m.depth.Add(cost)
	m.work.Add(int64(n) * cost)

	if m.procs == 1 || n <= m.grain {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	workers := m.procs
	if w := (n + m.grain - 1) / m.grain; w < workers {
		workers = w
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(m.grain))) - m.grain
				if lo >= n {
					return
				}
				hi := lo + m.grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Do runs the given branches concurrently as one super-step of depth 1 and
// work len(branches). It models a constant number of processors doing
// different O(1)-dispatch jobs (each branch may itself be charged separately
// via Account by the caller if it is not O(1)).
func (m *Machine) Do(branches ...func()) {
	m.ParallelFor(len(branches), func(i int) { branches[i]() })
}

// Sequential reports whether this machine runs super-steps serially.
func (m *Machine) Sequential() bool { return m.procs == 1 }
