// Package pram simulates an arbitrary CRCW PRAM on top of goroutines.
//
// The paper's algorithms are stated in the work/depth model of the
// concurrent-read concurrent-write PRAM with the "arbitrary" write-conflict
// rule. Real hardware offers neither synchronous processors nor unit-cost
// shared memory, so this package provides a faithful *cost simulator*:
//
//   - A Machine executes ParallelFor(n, body) as one PRAM super-step in
//     which n virtual processors each run body once. The bodies execute on a
//     persistent pool of physical worker goroutines that park between
//     super-steps (pool.go).
//   - The Machine counts Depth (number of super-steps, the PRAM "time") and
//     Work (total virtual-processor operations). These counters are the
//     quantities the paper's theorems bound, and they are what the
//     benchmark harness reports. They depend only on (n, cost) per call —
//     never on procs, grain, or the engine — so every schedule produces the
//     same ledger.
//   - Concurrent writes are expressed through Cells (see cells.go), whose
//     atomic operations realize the arbitrary / max / min / priority
//     conflict-resolution rules without data races.
//
// A Machine with Procs == 1 degenerates to a deterministic sequential
// executor, which tests use as the reference for the parallel schedules.
package pram

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Engine selects the physical execution strategy of a parallel Machine.
// The engine affects wall-clock time only; Work/Depth are engine-blind.
type Engine int

const (
	// EnginePooled dispatches super-steps to persistent workers parked on
	// per-worker epoch channels (pool.go). This is the default.
	EnginePooled Engine = iota
	// EngineSpawn spawns fresh goroutines plus a WaitGroup for every
	// super-step — the pre-pool behaviour, kept selectable so benchmarks
	// can measure the dispatch overhead the pool removes.
	EngineSpawn
)

// Machine is a simulated CRCW PRAM instance. The zero value is not usable;
// construct one with New, NewWithEngine, or NewSequential.
type Machine struct {
	procs  int
	grain  int // explicit SetGrain override; 0 = adaptive
	engine Engine
	pool   *pool // non-nil iff engine == EnginePooled and procs > 1

	depth atomic.Int64
	work  atomic.Int64

	// inStep guards against nested super-steps. A PRAM super-step is flat:
	// spawning a parallel loop from inside a virtual processor would make
	// the depth accounting meaningless, so it panics instead.
	inStep atomic.Bool

	phaseState
}

// Adaptive-grain parameters. With no SetGrain override the grain of a
// super-step is derived from its size: n/(procs*grainChunksPerProc) chunks
// of roughly equal size keep every worker busy with a few refills for load
// balance, the minGrain floor stops tiny rounds from shattering into
// per-element chunks, and maxChunkWork caps the units of *charged* work per
// chunk so high-cost bodies (ParallelForCost) still split finely enough to
// balance. Steps below minParallelWork charged units run inline on the
// caller: at that size the pool's wake-up latency exceeds the body work.
const (
	grainChunksPerProc = 4
	minGrain           = 64
	maxChunkWork       = 4096
	minParallelWork    = 4096
)

// New returns a pooled Machine backed by procs physical workers (the caller
// participates, so procs-1 goroutines are parked between super-steps).
// procs <= 0 selects runtime.GOMAXPROCS(0). Machines hold parked goroutines
// once used; Close releases them promptly, and a finalizer releases them on
// garbage collection otherwise.
func New(procs int) *Machine {
	return NewWithEngine(procs, EnginePooled)
}

// NewWithEngine is New with an explicit execution engine.
func NewWithEngine(procs int, e Engine) *Machine {
	procs = defaultProcs(procs)
	m := &Machine{procs: procs, engine: e}
	if e == EnginePooled && procs > 1 {
		// procs is a cost-model parameter; the physical helper count is
		// capped at GOMAXPROCS-1 because more OS-schedulable runners than
		// cores buys no throughput and costs a context switch per wake. An
		// over-subscribed machine (procs=8 on one core, say) degrades to
		// caller-only chunked execution with zero parked goroutines.
		helpers := procs - 1
		if mx := runtime.GOMAXPROCS(0) - 1; helpers > mx {
			helpers = mx
		}
		if helpers < 0 {
			helpers = 0
		}
		m.pool = newPool(helpers)
		// Workers reference only the pool, never the Machine, so an
		// abandoned Machine is collectable; the finalizer then unparks and
		// retires its workers.
		runtime.SetFinalizer(m, func(m *Machine) { m.pool.shutdown() })
	}
	return m
}

// NewSequential returns a Machine that executes every super-step on the
// calling goroutine in index order. Counters behave identically to the
// parallel machine; only the schedule is serial.
func NewSequential() *Machine { return &Machine{procs: 1} }

// Close releases the machine's parked workers. It is idempotent — double
// and concurrent Close are safe — and safe on sequential machines, but must
// not race with an in-flight ParallelFor. A ParallelFor issued *after*
// Close does not hang: the pool detects the retired workers and degrades to
// caller-only inline execution (counters unaffected). Omitting Close is not
// a leak — the finalizer reclaims the workers at the next collection — but
// long-lived processes that churn through Machines (one per request, say)
// should Close to keep the parked goroutine count flat.
func (m *Machine) Close() {
	if m.pool != nil {
		m.pool.shutdown()
		runtime.SetFinalizer(m, nil)
	}
}

// Procs reports the number of physical workers.
func (m *Machine) Procs() int { return m.procs }

// Epochs reports how many super-steps were dispatched through the worker
// pool (i.e. actually ran chunked). Inline steps don't count. For tests and
// benchmarks.
func (m *Machine) Epochs() int64 {
	if m.pool == nil {
		return 0
	}
	return m.pool.epoch.Load()
}

// SetGrain overrides the work-chunking granularity with a fixed value.
// Intended for tests and benchmarks; pass g <= 0 to restore the adaptive
// default. Grain affects wall-clock time only, never the Work/Depth
// counters.
func (m *Machine) SetGrain(g int) {
	if g <= 0 {
		g = 0
	}
	m.grain = g
}

// grainFor derives the chunk size for a super-step of n bodies of the given
// cost. See the adaptive-grain constants for the rationale.
func (m *Machine) grainFor(n int, cost int64) int {
	if m.grain > 0 {
		return m.grain
	}
	g := n / (m.procs * grainChunksPerProc)
	if g < minGrain {
		g = minGrain
	}
	if c := int(maxChunkWork / cost); g > c {
		// Expensive bodies split below the element floor — a single
		// cost-10^6 body per chunk is already plenty of work.
		g = c
		if g < 1 {
			g = 1
		}
	}
	return g
}

// Depth returns the number of PRAM super-steps executed so far.
func (m *Machine) Depth() int64 { return m.depth.Load() }

// Work returns the total number of virtual-processor operations charged so
// far.
func (m *Machine) Work() int64 { return m.work.Load() }

// ResetCounters zeroes the Work and Depth counters (e.g. to separate a
// preprocessing phase from a query phase in an experiment).
func (m *Machine) ResetCounters() {
	m.depth.Store(0)
	m.work.Store(0)
}

// Counters returns (work, depth) as a single snapshot.
func (m *Machine) Counters() (work, depth int64) {
	return m.work.Load(), m.depth.Load()
}

// Account charges extra work and depth without running anything. Algorithms
// use it for sequential-within-window phases whose cost must still appear in
// the PRAM ledger (e.g. the L sequential ExtendLeft steps inside a window in
// the paper's Step 1B).
func (m *Machine) Account(work, depth int64) {
	if work > 0 {
		m.work.Add(work)
	}
	if depth > 0 {
		m.depth.Add(depth)
	}
}

// ParallelFor runs body(i) for every i in [0, n) as a single PRAM
// super-step: Depth increases by 1 and Work by n. The body must be safe to
// run concurrently with itself; writes to shared data must go through Cells
// (or be provably per-index disjoint). The call returns after all n virtual
// processors finish, i.e. there is an implicit barrier, exactly as on a
// synchronous PRAM.
//
// Panic semantics: a body panic never escapes on a worker goroutine (which
// would kill the process with no chance to recover). When the step ran
// chunked — pooled or spawned — the first body panic is re-raised on the
// *calling* goroutine wrapped in a *StepPanic; when the step ran inline on
// the caller, the panic propagates unwrapped. Either way a recover around
// the ParallelFor call (e.g. a server's per-request recover) contains it.
func (m *Machine) ParallelFor(n int, body func(i int)) {
	m.ParallelForCost(n, 1, body)
}

// ParallelForCost is ParallelFor where each virtual processor performs cost
// unit operations: Depth increases by cost and Work by n*cost. Use it when a
// body performs a non-constant but uniform amount of local work (for
// example, a length-L sequential scan per window).
func (m *Machine) ParallelForCost(n int, cost int64, body func(i int)) {
	if n < 0 {
		panic(fmt.Sprintf("pram: ParallelFor with negative n=%d", n))
	}
	if cost < 1 {
		panic(fmt.Sprintf("pram: ParallelForCost with cost=%d < 1", cost))
	}
	if n == 0 {
		return
	}
	if m.inStep.Swap(true) {
		panic("pram: nested ParallelFor inside a super-step body")
	}
	defer m.inStep.Store(false)

	m.depth.Add(cost)
	m.work.Add(int64(n) * cost)

	grain := 0
	if m.procs > 1 {
		grain = m.grainFor(n, cost)
	}
	if m.procs == 1 || n <= grain ||
		(m.grain == 0 && int64(n)*cost < minParallelWork) {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}

	if m.engine == EngineSpawn {
		m.runSpawn(n, grain, body)
		return
	}
	m.pool.run(n, grain, body)
}

// runSpawn is the EngineSpawn dispatch path: fresh goroutines plus a
// WaitGroup per super-step (the pre-pool behaviour). It applies the same
// panic containment as the pool: a body panic on a spawned goroutine is
// parked, the step drains, and the panic is re-raised on the caller as a
// typed *StepPanic.
func (m *Machine) runSpawn(n, grain int, body func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Pointer[StepPanic]
	workers := m.procs
	if w := (n + grain - 1) / grain; w < workers {
		workers = w
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &StepPanic{Value: r, Stack: debug.Stack()})
				}
			}()
			for {
				if panicked.Load() != nil {
					return
				}
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
	if sp := panicked.Load(); sp != nil {
		panic(sp)
	}
}

// Do runs the given branches concurrently as one super-step of depth 1 and
// work len(branches). It models a constant number of processors doing
// different O(1)-dispatch jobs (each branch may itself be charged separately
// via Account by the caller if it is not O(1)).
func (m *Machine) Do(branches ...func()) {
	m.ParallelFor(len(branches), func(i int) { branches[i]() })
}

// Sequential reports whether this machine runs super-steps serially.
func (m *Machine) Sequential() bool { return m.procs == 1 }
