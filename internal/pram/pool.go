package pram

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/chaos"
)

// pool is the persistent execution substrate behind a parallel Machine.
// Workers are spawned once (lazily, on the first chunked super-step) and
// then park on their private job channel between epochs; publishing a
// super-step is a handful of channel sends instead of procs-1 goroutine
// spawns plus a WaitGroup allocation.
//
// The epoch protocol:
//
//  1. The publisher (the goroutine inside ParallelFor; there is exactly one
//     at a time, enforced by Machine.inStep) builds a step, bumps the epoch
//     counter, and sends the step to the k workers it wants awake.
//  2. Released workers claim [lo, hi) chunks from the step's atomic cursor
//     until it is exhausted, then decrement the step's pending count and
//     park again. The last worker out closes step.done.
//  3. The publisher claims chunks itself (the caller is always one of the
//     runners, so a pool machine with procs == p uses at most p-1 workers,
//     further capped at GOMAXPROCS-1 — see NewWithEngine), then blocks on
//     step.done — the implicit barrier of a synchronous PRAM super-step.
//     With zero workers the caller runs every chunk and the barrier is
//     trivially satisfied.
//
// Fault containment: a panic inside a body running on a worker goroutine
// would, if left alone, kill the whole process — no recover higher up the
// worker's stack exists. Instead every runner (workers and the publisher)
// executes the step under a recover that parks the first panic on the step;
// the remaining runners drain quickly (the claim loop aborts once a panic
// is recorded), the barrier completes normally, and the publisher re-raises
// the panic on the *calling* goroutine as a typed *StepPanic. A server
// wrapping requests in its own recover therefore loses one request, never
// the process. The same protocol guards the EngineSpawn path (machine.go).
//
// The pool is deliberately ignorant of Work/Depth accounting: scheduling
// lives here, the cost model lives in Machine, and nothing in this file can
// change a counter.
type pool struct {
	workers []chan *step // one parking channel per worker, buffered 1
	started bool         // workers spawned (publisher-side state)
	epoch   atomic.Int64 // super-steps dispatched through the pool
	closed  atomic.Bool
	quit    chan struct{}
}

// StepPanic is the panic value re-raised on the publishing goroutine when a
// super-step body panicked on any runner. Value is the original panic value
// and Stack the stack of the runner that panicked (captured at recover
// time, so it points into the body, not into the re-raise site).
type StepPanic struct {
	Value any
	Stack []byte
}

func (p *StepPanic) Error() string {
	return fmt.Sprintf("pram: super-step body panicked: %v", p.Value)
}

// Unwrap exposes a body panic value that was itself an error, so
// errors.Is/As see through the containment wrapper.
func (p *StepPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// step is one published super-step. It lives for a single epoch; the
// cursor/pending pair is the completion barrier.
type step struct {
	n        int
	grain    int
	body     func(i int)
	cursor   atomic.Int64 // next unclaimed index
	pending  atomic.Int32 // workers that have not finished this epoch
	panicked atomic.Pointer[StepPanic]
	done     chan struct{}
}

func newPool(workers int) *pool {
	p := &pool{quit: make(chan struct{})}
	p.workers = make([]chan *step, workers)
	for i := range p.workers {
		p.workers[i] = make(chan *step, 1)
	}
	return p
}

// run executes body over [0, n) in chunks of grain using up to len(workers)
// helpers plus the calling goroutine. Only called with n > grain.
func (p *pool) run(n, grain int, body func(i int)) {
	p.epoch.Add(1)
	if p.closed.Load() {
		// Use-after-Close: the workers are gone, so dispatching a step
		// would block on a barrier nobody completes. Degrade to caller-only
		// inline execution — slower, never wrong, and Close stays safe to
		// call at any point after the last *concurrent* ParallelFor.
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if len(p.workers) == 0 {
		// Over-subscribed machine on a small host (helpers capped to zero):
		// the caller is the only runner, so skip the step machinery — no
		// allocation, no cursor traffic.
		chaos.Sleep(chaos.PoolDelay)
		if chaos.Fire(chaos.PoolPanic) {
			panic(&chaos.InjectedError{Point: chaos.PoolPanic, Op: "super-step"})
		}
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if !p.started {
		p.started = true
		for _, ch := range p.workers {
			go worker(ch, p.quit)
		}
	}
	// Wake only as many workers as there are chunks beyond the caller's own.
	k := len(p.workers)
	if chunks := (n + grain - 1) / grain; chunks-1 < k {
		k = chunks - 1
	}
	s := &step{n: n, grain: grain, body: body, done: make(chan struct{})}
	s.pending.Store(int32(k))
	for i := 0; i < k; i++ {
		p.workers[i] <- s
	}
	s.runProtected() // the caller is runner zero
	if k > 0 {
		<-s.done
	}
	if sp := s.panicked.Load(); sp != nil {
		// Re-raise on the publishing goroutine, where the Machine's caller
		// (and any request-scoped recover above it) can handle it.
		panic(sp)
	}
}

// runProtected executes the runner's share of the step with panic
// containment: the first panic is parked on the step and the runner retires
// normally, keeping the completion barrier intact.
func (s *step) runProtected() {
	defer func() {
		if r := recover(); r != nil {
			s.panicked.CompareAndSwap(nil, &StepPanic{Value: r, Stack: debug.Stack()})
		}
	}()
	chaos.Sleep(chaos.PoolDelay)
	if chaos.Fire(chaos.PoolPanic) {
		panic(&chaos.InjectedError{Point: chaos.PoolPanic, Op: "super-step"})
	}
	s.work()
}

// work claims chunks until the cursor runs past n or a sibling runner
// panicked (no point finishing a step that is already failed).
func (s *step) work() {
	g := int64(s.grain)
	for {
		if s.panicked.Load() != nil {
			return
		}
		lo := s.cursor.Add(g) - g
		if lo >= int64(s.n) {
			return
		}
		hi := int(lo) + s.grain
		if hi > s.n {
			hi = s.n
		}
		for i := int(lo); i < hi; i++ {
			s.body(i)
		}
	}
}

// worker parks on its job channel between epochs. It holds no reference to
// the Machine, so an abandoned Machine can be finalized (which closes quit)
// even though its workers are still parked. runProtected never lets a body
// panic escape, so the pending decrement below always runs and the barrier
// cannot deadlock.
func worker(jobs <-chan *step, quit <-chan struct{}) {
	for {
		select {
		case <-quit:
			return
		case s := <-jobs:
			s.runProtected()
			if s.pending.Add(-1) == 0 {
				close(s.done)
			}
		}
	}
}

// shutdown releases the workers. Idempotent; must not race with run, which
// Machine guarantees (Close documents it, and the finalizer only fires once
// the Machine — and therefore any in-flight ParallelFor — is unreachable).
// Steps dispatched *after* shutdown degrade to inline execution (see run).
func (p *pool) shutdown() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.quit)
	}
}

// defaultProcs resolves the procs argument of New.
func defaultProcs(procs int) int {
	if procs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return procs
}
