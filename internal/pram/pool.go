package pram

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is the persistent execution substrate behind a parallel Machine.
// Workers are spawned once (lazily, on the first chunked super-step) and
// then park on their private job channel between epochs; publishing a
// super-step is a handful of channel sends instead of procs-1 goroutine
// spawns plus a WaitGroup allocation.
//
// The epoch protocol:
//
//  1. The publisher (the goroutine inside ParallelFor; there is exactly one
//     at a time, enforced by Machine.inStep) builds a step, bumps the epoch
//     counter, and sends the step to the k workers it wants awake.
//  2. Released workers claim [lo, hi) chunks from the step's atomic cursor
//     until it is exhausted, then decrement the step's pending count and
//     park again. The last worker out closes step.done.
//  3. The publisher claims chunks itself (the caller is always one of the
//     runners, so a pool machine with procs == p uses at most p-1 workers,
//     further capped at GOMAXPROCS-1 — see NewWithEngine), then blocks on
//     step.done — the implicit barrier of a synchronous PRAM super-step.
//     With zero workers the caller runs every chunk and the barrier is
//     trivially satisfied.
//
// The pool is deliberately ignorant of Work/Depth accounting: scheduling
// lives here, the cost model lives in Machine, and nothing in this file can
// change a counter.
type pool struct {
	workers []chan *step // one parking channel per worker, buffered 1
	started bool         // workers spawned (publisher-side state)
	epoch   atomic.Int64 // super-steps dispatched through the pool
	closed  sync.Once
	quit    chan struct{}
}

// step is one published super-step. It lives for a single epoch; the
// cursor/pending pair is the completion barrier.
type step struct {
	n       int
	grain   int
	body    func(i int)
	cursor  atomic.Int64 // next unclaimed index
	pending atomic.Int32 // workers that have not finished this epoch
	done    chan struct{}
}

func newPool(workers int) *pool {
	p := &pool{quit: make(chan struct{})}
	p.workers = make([]chan *step, workers)
	for i := range p.workers {
		p.workers[i] = make(chan *step, 1)
	}
	return p
}

// run executes body over [0, n) in chunks of grain using up to len(workers)
// helpers plus the calling goroutine. Only called with n > grain.
func (p *pool) run(n, grain int, body func(i int)) {
	p.epoch.Add(1)
	if len(p.workers) == 0 {
		// Over-subscribed machine on a small host (helpers capped to zero):
		// the caller is the only runner, so skip the step machinery — no
		// allocation, no cursor traffic.
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if !p.started {
		p.started = true
		for _, ch := range p.workers {
			go worker(ch, p.quit)
		}
	}
	// Wake only as many workers as there are chunks beyond the caller's own.
	k := len(p.workers)
	if chunks := (n + grain - 1) / grain; chunks-1 < k {
		k = chunks - 1
	}
	s := &step{n: n, grain: grain, body: body, done: make(chan struct{})}
	s.pending.Store(int32(k))
	for i := 0; i < k; i++ {
		p.workers[i] <- s
	}
	s.work() // the caller is runner zero
	if k > 0 {
		<-s.done
	}
}

// work claims chunks until the cursor runs past n.
func (s *step) work() {
	g := int64(s.grain)
	for {
		lo := s.cursor.Add(g) - g
		if lo >= int64(s.n) {
			return
		}
		hi := int(lo) + s.grain
		if hi > s.n {
			hi = s.n
		}
		for i := int(lo); i < hi; i++ {
			s.body(i)
		}
	}
}

// worker parks on its job channel between epochs. It holds no reference to
// the Machine, so an abandoned Machine can be finalized (which closes quit)
// even though its workers are still parked.
func worker(jobs <-chan *step, quit <-chan struct{}) {
	for {
		select {
		case <-quit:
			return
		case s := <-jobs:
			s.work()
			if s.pending.Add(-1) == 0 {
				close(s.done)
			}
		}
	}
}

// shutdown releases the workers. Idempotent; must not race with run, which
// Machine guarantees (Close documents it, and the finalizer only fires once
// the Machine — and therefore any in-flight ParallelFor — is unreachable).
func (p *pool) shutdown() {
	p.closed.Do(func() { close(p.quit) })
}

// defaultProcs resolves the procs argument of New.
func defaultProcs(procs int) int {
	if procs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return procs
}
