package pram

import "testing"

func TestArenaReturnsZeroedExactLength(t *testing.T) {
	m := NewSequential()
	for _, n := range []int{0, 1, 2, 3, 63, 64, 65, 1000} {
		s := m.GetInt64s(n)
		if len(s) != n {
			t.Fatalf("GetInt64s(%d) has length %d", n, len(s))
		}
		for i := range s {
			if s[i] != 0 {
				t.Fatalf("GetInt64s(%d)[%d] = %d, want 0", n, i, s[i])
			}
			s[i] = int64(i) + 1 // dirty it for the recycled round
		}
		m.PutInt64s(s)
		s2 := m.GetInt64s(n)
		for i := range s2 {
			if s2[i] != 0 {
				t.Fatalf("recycled GetInt64s(%d)[%d] = %d, want 0", n, i, s2[i])
			}
		}
		m.PutInt64s(s2)
	}
}

func TestArenaRecyclesAcrossSizesInClass(t *testing.T) {
	m := NewSequential()
	s := m.GetInts(100) // class 128
	s[0] = 7
	m.PutInts(s)
	// A smaller request in the same class may reuse the buffer — and must
	// see zeros either way.
	r := m.GetInts(70)
	if len(r) != 70 {
		t.Fatalf("length %d", len(r))
	}
	for i, v := range r {
		if v != 0 {
			t.Fatalf("r[%d] = %d", i, v)
		}
	}
	m.PutInts(r)
}

func TestArenaForeignAndOddCapacityPut(t *testing.T) {
	m := NewSequential()
	m.PutInt32s(nil)                 // no-op
	m.PutInt32s(make([]int32, 0, 3)) // non-power-of-two capacity: dropped
	m.PutBytes(make([]byte, 16))     // adoptable: exact power of two
	b := m.GetBytes(16)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %d", i, v)
		}
	}
}

func TestArenaAllTypes(t *testing.T) {
	m := NewSequential()
	i64 := m.GetInt64s(10)
	i32 := m.GetInt32s(10)
	ii := m.GetInts(10)
	bb := m.GetBytes(10)
	fl := m.GetBools(10)
	if len(i64)+len(i32)+len(ii)+len(bb)+len(fl) != 50 {
		t.Fatal("bad lengths")
	}
	m.PutInt64s(i64)
	m.PutInt32s(i32)
	m.PutInts(ii)
	m.PutBytes(bb)
	m.PutBools(fl)
}

func TestArenaNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative length did not panic")
		}
	}()
	NewSequential().GetInts(-1)
}

func TestClassBoundaries(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 65: 7}
	for n, want := range cases {
		if got := class(n); got != want {
			t.Errorf("class(%d) = %d, want %d", n, got, want)
		}
	}
}
