package pram

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// catchPanic runs f and returns the recovered panic value (nil if none).
func catchPanic(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

// TestWorkerPanicContained is the core containment guarantee: a body panic
// on a chunked super-step — which executes on pool worker goroutines, where
// an uncontained panic kills the whole process — must surface as a
// *StepPanic on the calling goroutine, with the machine still usable
// afterwards.
func TestWorkerPanicContained(t *testing.T) {
	// On a 1-core host the pooled machine has zero helpers and runs steps
	// inline (raw panic propagation, covered by TestInlinePanicPropagates).
	// Force real workers so the goroutine-crossing path is exercised
	// everywhere, including GOMAXPROCS=1 CI.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, engine := range []Engine{EnginePooled, EngineSpawn} {
		m := NewWithEngine(4, engine)
		m.SetGrain(1) // force chunked dispatch even for small n
		boom := errors.New("boom at i=7")
		v := catchPanic(func() {
			m.ParallelFor(64, func(i int) {
				if i == 7 {
					panic(boom)
				}
			})
		})
		sp, ok := v.(*StepPanic)
		if !ok {
			t.Fatalf("engine %v: panic value %T %v, want *StepPanic", engine, v, v)
		}
		if sp.Value != boom {
			t.Errorf("engine %v: wrapped value = %v, want %v", engine, sp.Value, boom)
		}
		if len(sp.Stack) == 0 {
			t.Errorf("engine %v: no runner stack captured", engine)
		}
		if !errors.Is(sp, boom) {
			t.Errorf("engine %v: errors.Is through StepPanic failed", engine)
		}
		// The failed step still charged the ledger (the step was dispatched)
		// and the machine still works.
		var mu sync.Mutex
		sum := 0
		m.ParallelFor(100, func(i int) {
			mu.Lock()
			sum += i
			mu.Unlock()
		})
		if sum != 4950 {
			t.Errorf("engine %v: machine broken after contained panic: sum=%d", engine, sum)
		}
		m.Close()
	}
}

// TestInlinePanicPropagates: steps that run inline on the caller (tiny n,
// or a sequential machine) propagate body panics unwrapped — no goroutine
// boundary is crossed, so no containment is needed and the raw value is
// more useful to debuggers.
func TestInlinePanicPropagates(t *testing.T) {
	m := NewSequential()
	boom := errors.New("inline boom")
	v := catchPanic(func() {
		m.ParallelFor(4, func(i int) { panic(boom) })
	})
	if v != boom {
		t.Fatalf("inline panic value = %v, want the raw value", v)
	}
	// inStep must have been reset by the deferred store.
	m.ParallelFor(4, func(int) {})
}

func TestCloseIdempotent(t *testing.T) {
	m := New(4)
	m.ParallelFor(100000, func(int) {}) // spin up the pool
	m.Close()
	m.Close() // double close must not panic or deadlock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); m.Close() }()
	}
	wg.Wait()

	// Sequential machines: Close is trivially safe.
	s := NewSequential()
	s.Close()
	s.Close()
}

// TestUseAfterCloseDegradesInline: dispatching a super-step on a closed
// machine must not hang on a barrier nobody completes; it degrades to
// caller-only execution with identical results and ledger.
func TestUseAfterCloseDegradesInline(t *testing.T) {
	m := New(4)
	m.ParallelFor(100000, func(int) {})
	m.Close()
	n := 1 << 17
	out := make([]int, n)
	m.ParallelFor(n, func(i int) { out[i] = i })
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d after Close", i, v)
		}
	}
	if m.Work() != int64(100000+n) || m.Depth() != 2 {
		t.Errorf("ledger after close = (%d, %d), want (%d, 2)", m.Work(), m.Depth(), 100000+n)
	}
}

// TestPanicLedgerUnchanged: containment must not alter Work/Depth
// accounting — the step is charged when dispatched, panic or not.
func TestPanicLedgerUnchanged(t *testing.T) {
	m := New(4)
	defer m.Close()
	m.SetGrain(8)
	_ = catchPanic(func() {
		m.ParallelFor(1000, func(i int) {
			if i == 0 {
				panic("x")
			}
		})
	})
	if m.Work() != 1000 || m.Depth() != 1 {
		t.Errorf("ledger = (%d, %d), want (1000, 1)", m.Work(), m.Depth())
	}
}
