package czsearch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/stream"
	"repro/internal/textgen"
)

func pats(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func mustAut(t testing.TB, patterns [][]byte) *dense.Automaton {
	t.Helper()
	a, err := dense.Compile(patterns, dense.Options{})
	if err != nil {
		t.Fatalf("dense.Compile: %v", err)
	}
	return a
}

// encode wraps a token slice in an LZ1R1 container. The stream need not be
// an optimal parse — any structurally valid token sequence is a legal
// container, which is how the adversarial shapes below are built.
func encode(t testing.TB, c lz.Compressed) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := lz.EncodeStream(&buf, c); err != nil {
		t.Fatalf("EncodeStream: %v", err)
	}
	return buf.Bytes()
}

// compress produces a genuine lz.Compress container for text.
func compress(t testing.TB, text []byte) []byte {
	t.Helper()
	m := pram.NewSequential()
	return encode(t, lz.Compress(m, text))
}

// runScanner scans a container and collects events.
func runScanner(t testing.TB, aut *dense.Automaton, container []byte, cfg Config) ([]Event, Stats) {
	t.Helper()
	dec, err := lz.NewDecoder(bytes.NewReader(container))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	var evs []Event
	st, err := NewScanner(aut, cfg).Run(context.Background(), dec, func(e Event) error {
		evs = append(evs, e)
		return nil
	})
	if err != nil {
		t.Fatalf("Scanner.Run: %v", err)
	}
	return evs, st
}

// oracleEvents is decompress-then-match on the same automaton: the exact
// event stream the scanner must reproduce.
func oracleEvents(t testing.TB, aut *dense.Automaton, container []byte) ([]Event, []byte) {
	t.Helper()
	c, err := lz.DecodeStream(container)
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	text, err := lz.Decode(c)
	if err != nil {
		t.Fatalf("lz.Decode: %v", err)
	}
	var evs []Event
	for i, m := range aut.Match(text) {
		if m.Length > 0 {
			evs = append(evs, Event{Pos: int64(i), PatternID: m.PatternID, Length: m.Length})
		}
	}
	return evs, text
}

func assertSameEvents(t *testing.T, label string, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, oracle has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %+v, oracle %+v", label, i, got[i], want[i])
		}
	}
}

// assertAccounting pins the byte-accounting invariant: every represented
// byte is touched, sync-skipped, or memo-replayed — exactly once.
func assertAccounting(t *testing.T, label string, st Stats) {
	t.Helper()
	if st.BytesTouched+st.SyncSkipped+st.MemoBytes != st.BytesRepresented {
		t.Fatalf("%s: touched %d + skipped %d + memo %d != represented %d",
			label, st.BytesTouched, st.SyncSkipped, st.MemoBytes, st.BytesRepresented)
	}
}

// TestScannerEquivalence is the acceptance-criterion suite over genuine
// lz.Compress containers: czsearch output byte-identical to
// decompress-then-match across corpus shapes.
func TestScannerEquivalence(t *testing.T) {
	gen := textgen.New(41)
	dictionaries := [][][]byte{
		pats("he", "she", "his", "hers"),
		pats("a", "aa", "aaa", "ab", "abab", "bb"),
		gen.Dictionary(32, 1, 10, 4),
	}
	corpora := []struct {
		name string
		text []byte
	}{
		{"empty", nil},
		{"short", []byte("ushers said shes here")},
		{"uniform", gen.Uniform(4096, 4)},
		{"repetitive", gen.Repetitive(8192, 64, 0.02)},
		{"runs", bytes.Repeat([]byte("aaaaaaab"), 512)},
		{"dna", gen.DNA(4096)},
	}
	for di, patterns := range dictionaries {
		aut := mustAut(t, patterns)
		for _, c := range corpora {
			label := fmt.Sprintf("dict%d/%s", di, c.name)
			container := compress(t, c.text)
			want, _ := oracleEvents(t, aut, container)
			got, st := runScanner(t, aut, container, Config{})
			assertSameEvents(t, label, got, want)
			assertAccounting(t, label, st)
			if st.BytesRepresented != int64(len(c.text)) {
				t.Fatalf("%s: represented %d bytes, text has %d", label, st.BytesRepresented, len(c.text))
			}
			if st.Events != int64(len(got)) {
				t.Fatalf("%s: stats.Events %d != %d emitted", label, st.Events, len(got))
			}
		}
	}
}

// TestScannerSublinearOnRepetitive pins the point of the subsystem: on a
// highly compressible corpus the automaton consumes far fewer bytes than
// the stream represents.
func TestScannerSublinearOnRepetitive(t *testing.T) {
	gen := textgen.New(7)
	text := gen.Repetitive(1<<16, 64, 0.01)
	aut := mustAut(t, pats("abac", "cab", "bb", "abra"))
	container := compress(t, text)
	want, _ := oracleEvents(t, aut, container)
	got, st := runScanner(t, aut, container, Config{})
	assertSameEvents(t, "repetitive", got, want)
	if st.BytesTouched*2 > st.BytesRepresented {
		t.Fatalf("touched %d of %d represented bytes — no compressed-domain saving",
			st.BytesTouched, st.BytesRepresented)
	}
}

// TestScannerAdversarialTokens hand-builds the container shapes the issue
// calls out: overlapping self-referential copies, matches spanning three or
// more tokens, window-edge copies, and repeated tokens (memo hits).
func TestScannerAdversarialTokens(t *testing.T) {
	lits := func(s string) []lz.Token {
		out := make([]lz.Token, len(s))
		for i := range s {
			out[i] = lz.Token{Lit: s[i]}
		}
		return out
	}
	cat := func(groups ...[]lz.Token) []lz.Token {
		var out []lz.Token
		for _, g := range groups {
			out = append(out, g...)
		}
		return out
	}
	cases := []struct {
		name     string
		patterns [][]byte
		tokens   []lz.Token
		n        int
	}{
		{
			// One literal then a length-40 period-1 self-referential run:
			// the automaton must sync within maxPatLen bytes and replay the
			// rest, and "aaaa" occurrences span the token boundary.
			name:     "selfref-run",
			patterns: pats("aaaa", "aa"),
			tokens:   cat(lits("a"), []lz.Token{{Src: 0, Len: 40}}),
			n:        41,
		},
		{
			// Period-3 self-referential copy overlapping its own output.
			name:     "selfref-period3",
			patterns: pats("abcabc", "ca"),
			tokens:   cat(lits("abc"), []lz.Token{{Src: 0, Len: 30}}),
			n:        33,
		},
		{
			// A long pattern assembled from ≥3 tokens: "needle" split as
			// "ne" + copy("e") + lits("dle") never appears inside one token.
			name:     "match-spans-3-tokens",
			patterns: pats("needle", "edl"),
			tokens:   cat(lits("ne"), []lz.Token{{Src: 1, Len: 1}}, lits("dle")),
			n:        6,
		},
		{
			// Pattern spanning four tokens, with copies on both sides.
			name:     "match-spans-4-tokens",
			patterns: pats("abcabcabc"),
			tokens: cat(lits("abc"), []lz.Token{{Src: 0, Len: 3}},
				[]lz.Token{{Src: 0, Len: 2}}, lits("c"), []lz.Token{{Src: 0, Len: 9}}),
			n: 18,
		},
		{
			// Repeated identical tokens from the same entry state: memo
			// territory. "xy" * 32 via the same (src=0,len=2) token.
			name:     "repeated-tokens",
			patterns: pats("yx", "xyxy"),
			tokens: cat(lits("xy"), []lz.Token{
				{Src: 0, Len: 2}, {Src: 0, Len: 2}, {Src: 0, Len: 2}, {Src: 0, Len: 2},
				{Src: 0, Len: 2}, {Src: 0, Len: 2}, {Src: 0, Len: 2}, {Src: 0, Len: 2},
			}),
			n: 18,
		},
		{
			// Copy whose source starts at offset 0 — the left edge of any
			// retained window — plus a copy reaching exactly to the frontier.
			name:     "edge-copies",
			patterns: pats("abab", "bab"),
			tokens:   cat(lits("ab"), []lz.Token{{Src: 0, Len: 2}}, []lz.Token{{Src: 2, Len: 2}}, []lz.Token{{Src: 5, Len: 1}}),
			n:        7,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			aut := mustAut(t, tc.patterns)
			container := encode(t, lz.Compressed{N: tc.n, Tokens: tc.tokens})
			want, text := oracleEvents(t, aut, container)
			if len(text) != tc.n {
				t.Fatalf("bad test case: decodes to %d bytes, want %d", len(text), tc.n)
			}
			got, st := runScanner(t, aut, container, Config{})
			assertSameEvents(t, tc.name, got, want)
			assertAccounting(t, tc.name, st)
			if tc.name == "repeated-tokens" && st.MemoHits == 0 {
				t.Fatalf("repeated identical tokens produced no memo hits (misses %d)", st.MemoMisses)
			}
		})
	}
}

// TestScannerWindowed pins the bounded-history mode: results stay identical
// while the window is respected, the resident history stays bounded, and a
// too-far back-reference fails with the typed sentinel.
func TestScannerWindowed(t *testing.T) {
	gen := textgen.New(13)
	text := gen.Repetitive(1<<15, 48, 0.02)
	aut := mustAut(t, pats("abra", "cad", "bb"))
	container := compress(t, text)

	// lz.Compress can reference arbitrarily far back; find a window that
	// this particular container happens to respect from its decode stats.
	uc, err := stream.NewUncompressor(bytes.NewReader(container), stream.UncompressConfig{})
	if err != nil {
		t.Fatalf("NewUncompressor: %v", err)
	}
	u, err := uc.Run(context.Background(), bytes.NewBuffer(nil))
	if err != nil {
		t.Fatalf("Uncompressor.Run: %v", err)
	}
	win := int(u.FarthestBack)

	want, _ := oracleEvents(t, aut, container)
	got, st := runScanner(t, aut, container, Config{Window: win})
	assertSameEvents(t, "windowed", got, want)
	if st.MaxResident > 2*win+1 {
		t.Fatalf("resident history %d exceeds 2×window %d", st.MaxResident, 2*win)
	}

	// A window smaller than the farthest back-reference must surface
	// ErrWindowExceeded, not wrong output.
	small := win / 4
	if small < 1 {
		small = 1
	}
	dec2, err := lz.NewDecoder(bytes.NewReader(container))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	_, err = NewScanner(aut, Config{Window: small}).Run(context.Background(), dec2, func(Event) error { return nil })
	if !errors.Is(err, ErrWindowExceeded) {
		t.Fatalf("window %d: err = %v, want ErrWindowExceeded", small, err)
	}
}

// TestScannerRejectsCorrupt pins typed failures: out-of-range sources, N
// mismatches, and output caps — never silent wrong output.
func TestScannerRejectsCorrupt(t *testing.T) {
	aut := mustAut(t, pats("ab"))
	run := func(c lz.Compressed, cfg Config) error {
		container := encode(t, c)
		dec, err := lz.NewDecoder(bytes.NewReader(container))
		if err != nil {
			return err
		}
		_, err = NewScanner(aut, cfg).Run(context.Background(), dec, func(Event) error { return nil })
		return err
	}
	if err := run(lz.Compressed{N: 3, Tokens: []lz.Token{{Lit: 'a'}, {Src: 5, Len: 2}}}, Config{}); err == nil {
		t.Fatal("future source accepted")
	}
	if err := run(lz.Compressed{N: 9, Tokens: []lz.Token{{Lit: 'a'}, {Src: 0, Len: 3}}}, Config{}); err == nil {
		t.Fatal("N mismatch accepted")
	}
	err := run(lz.Compressed{N: 100, Tokens: []lz.Token{{Lit: 'a'}, {Src: 0, Len: 99}}}, Config{MaxOutput: 10})
	if !errors.Is(err, ErrOutputExceeded) {
		t.Fatalf("output cap: err = %v, want ErrOutputExceeded", err)
	}
}

// TestScannerSinkAbort pins that a sink error stops the scan and surfaces.
func TestScannerSinkAbort(t *testing.T) {
	aut := mustAut(t, pats("ab"))
	container := compress(t, bytes.Repeat([]byte("ab"), 200))
	dec, err := lz.NewDecoder(bytes.NewReader(container))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	boom := errors.New("sink says no")
	seen := 0
	_, err = NewScanner(aut, Config{}).Run(context.Background(), dec, func(Event) error {
		seen++
		if seen == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if seen != 3 {
		t.Fatalf("sink called %d times after aborting at 3", seen)
	}
}

// TestScannerReuse pins pooling semantics: the same Scanner produces
// identical output across Runs over different containers, with no state
// (history, memo, pending events) leaking between them.
func TestScannerReuse(t *testing.T) {
	gen := textgen.New(23)
	aut := mustAut(t, pats("ab", "bc", "abc"))
	s := NewScanner(aut, Config{})
	for trial := 0; trial < 4; trial++ {
		text := gen.Repetitive(2048+511*trial, 32, 0.05)
		container := compress(t, text)
		want, _ := oracleEvents(t, aut, container)
		dec, err := lz.NewDecoder(bytes.NewReader(container))
		if err != nil {
			t.Fatalf("NewDecoder: %v", err)
		}
		var got []Event
		if _, err := s.Run(context.Background(), dec, func(e Event) error {
			got = append(got, e)
			return nil
		}); err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		assertSameEvents(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestFallbackEquivalence pins the tree-walk engine: the fused
// uncompress+match pipeline emits the same events as the dense scanner and
// reports full-cost accounting (touched == represented).
func TestFallbackEquivalence(t *testing.T) {
	gen := textgen.New(31)
	patterns := pats("he", "she", "hers", "aba")
	aut := mustAut(t, patterns)
	m := pram.New(2)
	defer m.Close()
	d := core.Preprocess(m, patterns, core.Options{Seed: 3})

	for _, text := range [][]byte{
		[]byte("ushers say hershel is his"),
		gen.Repetitive(8192, 64, 0.02),
	} {
		container := compress(t, text)
		want, _ := oracleEvents(t, aut, container)

		f, err := NewFallback(bytes.NewReader(container), Config{})
		if err != nil {
			t.Fatalf("NewFallback: %v", err)
		}
		if f.N() != len(text) {
			t.Fatalf("N = %d, want %d", f.N(), len(text))
		}
		var got []Event
		st, err := f.Run(context.Background(), stream.DictMatcher{Dict: d, M: m}, stream.Config{SegmentBytes: 1024},
			func(e Event) error {
				got = append(got, e)
				return nil
			})
		if err != nil {
			t.Fatalf("Fallback.Run: %v", err)
		}
		assertSameEvents(t, "fallback", got, want)
		if st.BytesTouched != st.BytesRepresented || st.BytesRepresented != int64(len(text)) {
			t.Fatalf("fallback accounting: touched %d, represented %d, text %d",
				st.BytesTouched, st.BytesRepresented, len(text))
		}
	}

	// Non-container input fails at construction with the typed sentinel.
	if _, err := NewFallback(bytes.NewReader([]byte("not a container")), Config{}); !errors.Is(err, lz.ErrNotLZ1R1) {
		t.Fatalf("non-container: err = %v, want lz.ErrNotLZ1R1", err)
	}
}
