package czsearch

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/chaos"
	"repro/internal/dense"
	"repro/internal/lz"
)

// occurrence is one pattern occurrence keyed by its END position. The
// scanner keeps occurrences of the retained history in nondecreasing end
// order (same-end entries in the automaton's longest-first output order), so
// a copy-token replay is a binary search plus a run of appends.
type occurrence struct {
	end    int64
	pat    int32
	length int32
}

// ringSlot is the pending longest-match-starting-here for one text position
// that is not yet final. length 0 means no occurrence seen.
type ringSlot struct {
	pat    int32
	length int32
}

// memoKey identifies a copy token by its entry state and wire form. Token
// sources are absolute offsets into this container's represented text, so a
// key is only meaningful within one run — the cache resets per Run.
type memoKey struct {
	state int32
	src   int32
	len   int32
}

// memoEntry is everything needed to replay a token without touching bytes:
// the exit state, the occurrences relative to the token start, and the
// destination of the scan that populated the entry (its state history is
// bulk-copied so the replayed region stays a valid future copy source).
type memoEntry struct {
	exit      int32
	firstDest int64
	events    []relOcc
}

// relOcc is an occurrence relative to a token start: end offset in [1, len].
type relOcc struct {
	endOff int32
	pat    int32
	length int32
}

// Scanner matches a dictionary against an LZ1R1 token stream on the dense
// compiled automaton. A Scanner is reusable (Run resets it first) but not
// safe for concurrent use; the serving layer pools them.
type Scanner struct {
	aut      *dense.Automaton
	cfg      Config
	maxPat   int
	ringMask int64
	memoCap  int

	state     int32
	pos       int64 // absolute represented bytes consumed
	hist      []byte
	stateHist []int32 // stateHist[i] = automaton state after byte histStart+i
	histStart int64   // absolute offset of hist[0]

	occ []occurrence

	ring    []ringSlot
	flushed int64 // next start position not yet emitted
	live    int   // ring slots holding a pending occurrence

	memo map[memoKey]memoEntry

	sink  Sink
	stats Stats
}

// NewScanner builds a scanner over a compiled automaton.
func NewScanner(aut *dense.Automaton, cfg Config) *Scanner {
	maxPat := aut.MaxPatternLen()
	ringSize := 1
	for ringSize < maxPat {
		ringSize <<= 1
	}
	s := &Scanner{
		aut:      aut,
		cfg:      cfg,
		maxPat:   maxPat,
		ring:     make([]ringSlot, ringSize),
		ringMask: int64(ringSize - 1),
	}
	if cfg.MemoMaxEntries >= 0 {
		s.memoCap = cfg.MemoMaxEntries
		if s.memoCap == 0 {
			s.memoCap = DefaultMemoMaxEntries
		}
		s.memo = make(map[memoKey]memoEntry)
	}
	return s
}

// Reset returns the scanner to its initial state, keeping allocations. The
// memo cache is cleared too: its keys are absolute offsets of one
// container's text and mean nothing to the next.
func (s *Scanner) Reset() {
	s.state = 0
	s.pos = 0
	s.histStart = 0
	s.hist = s.hist[:0]
	s.stateHist = s.stateHist[:0]
	s.occ = s.occ[:0]
	for i := range s.ring {
		s.ring[i] = ringSlot{}
	}
	s.flushed = 0
	s.live = 0
	clear(s.memo)
	s.sink = nil
	s.stats = Stats{}
}

// Run consumes every token from dec and emits each represented position's
// longest match to sink, in position order, exactly as decompress-then-match
// would. The accounting invariant BytesTouched + SyncSkipped + MemoBytes ==
// BytesRepresented holds on success: every represented byte is either fed
// through the automaton, fast-forwarded after a state coincidence, or
// replayed from the memo.
func (s *Scanner) Run(ctx context.Context, dec *lz.Decoder, sink Sink) (Stats, error) {
	s.Reset()
	s.sink = sink
	for tok := int64(0); ; tok++ {
		if tok&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return s.stats, err
			}
		}
		if err := chaos.Err(chaos.CzTruncate, "read"); err != nil {
			return s.stats, tokenError(tok, err)
		}
		t, err := dec.NextToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return s.stats, err
		}
		s.stats.Tokens++
		if t.IsLiteral() {
			err = s.literal(t.Lit)
		} else {
			err = s.copyToken(t, tok)
		}
		if err != nil {
			return s.stats, err
		}
		// Stream events out promptly: every start more than maxPat behind
		// the scan frontier is final. O(1) when nothing is pending.
		if err := s.flushTo(s.pos - int64(s.maxPat) + 1); err != nil {
			return s.stats, err
		}
		if len(s.hist) > s.stats.MaxResident {
			s.stats.MaxResident = len(s.hist)
		}
		s.trim()
	}
	if err := s.flushTo(s.pos); err != nil {
		return s.stats, err
	}
	if s.stats.BytesRepresented != int64(dec.N()) {
		return s.stats, fmt.Errorf("lz: decoded %d bytes, header says %d", s.stats.BytesRepresented, dec.N())
	}
	return s.stats, nil
}

// literal consumes one literal byte: one automaton transition.
func (s *Scanner) literal(b byte) error {
	if s.cfg.MaxOutput > 0 && s.stats.BytesRepresented+1 > s.cfg.MaxOutput {
		return ErrOutputExceeded
	}
	s.hist = append(s.hist, b)
	s.state = s.aut.Step(s.state, b)
	s.stateHist = append(s.stateHist, s.state)
	s.pos++
	s.stats.Literals++
	s.stats.BytesRepresented++
	s.stats.BytesTouched++
	if s.aut.HasOutputs(s.state) {
		for _, p := range s.aut.Outputs(s.state) {
			if err := s.record(s.pos, p, s.aut.PatternLen(p)); err != nil {
				return err
			}
		}
	}
	return nil
}

// copyToken consumes a copy token (src, len): the source bytes are
// materialized into the history (they may be future copy sources), but the
// automaton only scans until its state coincides with the recorded state at
// the same source offset — guaranteed within maxPatLen bytes, because the
// dense-DFA state is a pure function of the last maxPatLen input bytes and
// destination and source share those bytes from offset maxPatLen on. The
// remainder is a bulk state-history copy plus an occurrence replay.
func (s *Scanner) copyToken(t lz.Token, tok int64) error {
	srcAbs := int64(t.Src)
	n := int(t.Len)
	if srcAbs < 0 || srcAbs >= s.pos {
		return tokenError(tok, fmt.Errorf("lz: token source %d out of range (have %d bytes)", t.Src, s.pos))
	}
	if s.cfg.MaxOutput > 0 && s.stats.BytesRepresented+int64(n) > s.cfg.MaxOutput {
		return ErrOutputExceeded
	}
	if srcAbs < s.histStart {
		return tokenError(tok, fmt.Errorf("%w: source %d precedes retained offset %d", ErrWindowExceeded, srcAbs, s.histStart))
	}
	s.stats.Copies++
	s.stats.BytesRepresented += int64(n)

	sIdx := int(srcAbs - s.histStart)
	dIdx := len(s.hist)
	dAbs := s.pos

	// Materialize the represented bytes. Self-referential copies (source
	// overlapping destination) are legal LZ1; the periodic copy reads each
	// byte only after it is written.
	s.hist = growBytes(s.hist, dIdx+n)
	copyPeriodic(s.hist, dIdx, sIdx, n)
	s.stateHist = growInt32(s.stateHist, dIdx+n)

	entry := s.state
	key := memoKey{state: entry, src: t.Src, len: t.Len}
	cacheable := s.memo != nil && n <= DefaultMemoMaxTokens
	if cacheable {
		if e, ok := s.memo[key]; ok && e.firstDest >= s.histStart {
			// Memo hit: same entry state, same source bytes ⇒ the whole
			// state trajectory repeats. Replay it without touching a byte.
			fIdx := int(e.firstDest - s.histStart)
			copy(s.stateHist[dIdx:dIdx+n], s.stateHist[fIdx:fIdx+n])
			for _, ro := range e.events {
				if err := s.record(dAbs+int64(ro.endOff), ro.pat, ro.length); err != nil {
					return err
				}
			}
			s.state = e.exit
			s.pos += int64(n)
			s.stats.MemoHits++
			s.stats.MemoBytes += int64(n)
			return nil
		}
	}

	occBefore := len(s.occ)
	synced := -1
	for j := 0; j < n; j++ {
		s.state = s.aut.Step(s.state, s.hist[dIdx+j])
		s.stateHist[dIdx+j] = s.state
		s.stats.BytesTouched++
		if s.aut.HasOutputs(s.state) {
			end := dAbs + int64(j) + 1
			for _, p := range s.aut.Outputs(s.state) {
				if err := s.record(end, p, s.aut.PatternLen(p)); err != nil {
					return err
				}
			}
		}
		if s.state == s.stateHist[sIdx+j] {
			synced = j
			break
		}
	}
	if synced >= 0 && synced < n-1 {
		// States coincide at offset `synced`; offsets synced+1..n-1 replay
		// the source's states and occurrences, shifted by delta.
		rem := n - synced - 1
		copyPeriodic(s.stateHist, dIdx+synced+1, sIdx+synced+1, rem)
		s.state = s.stateHist[dIdx+n-1]
		s.stats.SyncSkipped += int64(rem)
		lo := srcAbs + int64(synced) + 1 // replay source ends in (lo, hi]
		hi := srcAbs + int64(n)
		delta := dAbs - srcAbs
		i := sort.Search(len(s.occ), func(k int) bool { return s.occ[k].end > lo })
		// The loop bound re-reads len(s.occ): with a self-referential copy
		// the replay appends occurrences that are themselves sources for
		// later offsets of the same token.
		for ; i < len(s.occ) && s.occ[i].end <= hi; i++ {
			o := s.occ[i]
			if err := s.record(o.end+delta, o.pat, o.length); err != nil {
				return err
			}
		}
	}

	if cacheable {
		s.stats.MemoMisses++
		if evs := s.occ[occBefore:]; len(evs) <= DefaultMemoMaxEvents {
			rel := make([]relOcc, len(evs))
			for k, o := range evs {
				rel[k] = relOcc{endOff: int32(o.end - dAbs), pat: o.pat, length: o.length}
			}
			e := memoEntry{exit: s.state, firstDest: dAbs, events: rel}
			if chaos.Fire(chaos.CzCache) {
				// Poison the cached exit state: later hits on this key
				// replay from the wrong state. The sampled decompress-then-
				// match oracle in the serving layer must catch this.
				e.exit = (e.exit + 1) % int32(s.aut.NumStates())
			}
			if len(s.memo) >= s.memoCap {
				clear(s.memo)
			}
			s.memo[key] = e
		}
	}
	s.pos += int64(n)
	return nil
}

// record notes one occurrence by end position: it is appended to the replay
// history and folded into the pending per-start ring (longest pattern wins;
// first-recorded wins ties, matching dense.MatchInto). Ends arrive in
// nondecreasing order, so every start more than maxPat before the newest
// end is final and can be flushed.
func (s *Scanner) record(end int64, pat, length int32) error {
	if err := s.flushTo(end - int64(s.maxPat)); err != nil {
		return err
	}
	s.occ = append(s.occ, occurrence{end: end, pat: pat, length: length})
	slot := &s.ring[(end-int64(length))&s.ringMask]
	if slot.length == 0 {
		*slot = ringSlot{pat: pat, length: length}
		s.live++
	} else if length > slot.length {
		*slot = ringSlot{pat: pat, length: length}
	}
	return nil
}

// flushTo emits events for all pending starts < limit, in start order.
func (s *Scanner) flushTo(limit int64) error {
	for s.flushed < limit {
		if s.live == 0 {
			s.flushed = limit
			return nil
		}
		slot := &s.ring[s.flushed&s.ringMask]
		if slot.length != 0 {
			s.stats.Events++
			ev := Event{Pos: s.flushed, PatternID: slot.pat, Length: slot.length}
			*slot = ringSlot{}
			s.live--
			if err := s.sink(ev); err != nil {
				return err
			}
		}
		s.flushed++
	}
	return nil
}

// trim enforces the history window with the uncompressor's lazy discipline:
// only when the history exceeds twice the window is it cut back to exactly
// the window. Occurrences whose ends fall behind the retained range can
// never be replayed again and are dropped in lockstep.
func (s *Scanner) trim() {
	win := s.cfg.Window
	if win <= 0 || len(s.hist) <= 2*win {
		return
	}
	cut := len(s.hist) - win
	s.histStart += int64(cut)
	copy(s.hist, s.hist[cut:])
	s.hist = s.hist[:win]
	copy(s.stateHist, s.stateHist[cut:])
	s.stateHist = s.stateHist[:win]
	k := sort.Search(len(s.occ), func(i int) bool { return s.occ[i].end > s.histStart })
	if k > 0 {
		n := copy(s.occ, s.occ[k:])
		s.occ = s.occ[:n]
	}
}

// growBytes extends b to length n, reallocating at most geometrically.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	nb := make([]byte, n, max(2*n, 1024))
	copy(nb, b)
	return nb
}

// growInt32 is growBytes for state history.
func growInt32(v []int32, n int) []int32 {
	if cap(v) >= n {
		return v[:n]
	}
	nv := make([]int32, n, max(2*n, 1024))
	copy(nv, v)
	return nv
}

// copyPeriodic fills a[dst:dst+n] from a[src:src+n] with LZ copy semantics:
// each element is read only after any earlier write to it, so an
// overlapping (self-referential) range produces the periodic repetition,
// not a memmove of the original contents. Runs in O(n/period) copy calls.
func copyPeriodic[T byte | int32](a []T, dst, src, n int) {
	period := dst - src
	for filled := 0; filled < n; {
		chunk := min(n-filled, period)
		copy(a[dst+filled:dst+filled+chunk], a[src+filled:src+filled+chunk])
		filled += chunk
	}
}
