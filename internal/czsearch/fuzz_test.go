package czsearch

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/dense"
	"repro/internal/lz"
	"repro/internal/pram"
)

// FuzzCzsearchEquivalence is the acceptance-criterion fuzz target: for
// random texts AND random raw token streams, the compressed-domain scanner
// must be byte-identical to decompress-then-match on the same automaton.
//
// Two container sources per input:
//
//  1. A genuine lz.Compress parse of a derived text — realistic token
//     shapes, arbitrarily far back-references.
//  2. A hand-assembled token stream decoded from the raw fuzz bytes —
//     adversarial shapes lz.Compress would never emit: repeated identical
//     tokens (memo hits), short overlapping self-referential copies,
//     pathological literal/copy interleavings.
func FuzzCzsearchEquivalence(f *testing.F) {
	f.Add([]byte("abcabracadabra"), []byte{2, 9, 0, 4})
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaa"), []byte{0, 200, 1, 1, 1, 1})
	f.Add(bytes.Repeat([]byte("abca"), 300), []byte{7, 7, 7, 7, 7, 7})

	m := pram.NewSequential()
	patterns := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abc"), []byte("abca"),
		[]byte("aaaa"), []byte("cab"), []byte("bb"), []byte("cc"),
	}
	aut, err := dense.Compile(patterns, dense.Options{})
	if err != nil {
		f.Fatal(err)
	}

	check := func(t *testing.T, label string, container []byte) {
		c, err := lz.DecodeStream(container)
		if err != nil {
			t.Fatalf("%s: DecodeStream on own encoding: %v", label, err)
		}
		text, err := lz.Decode(c)
		if err != nil {
			t.Fatalf("%s: Decode: %v", label, err)
		}
		var want []Event
		for i, mm := range aut.Match(text) {
			if mm.Length > 0 {
				want = append(want, Event{Pos: int64(i), PatternID: mm.PatternID, Length: mm.Length})
			}
		}
		dec, err := lz.NewDecoder(bytes.NewReader(container))
		if err != nil {
			t.Fatalf("%s: NewDecoder: %v", label, err)
		}
		var got []Event
		st, err := NewScanner(aut, Config{}).Run(context.Background(), dec, func(e Event) error {
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: Run: %v", label, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d events, oracle %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: event %d = %+v, oracle %+v", label, i, got[i], want[i])
			}
		}
		if st.BytesTouched+st.SyncSkipped+st.MemoBytes != st.BytesRepresented {
			t.Fatalf("%s: accounting: %d+%d+%d != %d", label,
				st.BytesTouched, st.SyncSkipped, st.MemoBytes, st.BytesRepresented)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, tokenSpec []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		text := make([]byte, len(data))
		for i, v := range data {
			text[i] = 'a' + v%3
		}

		// Source 1: a genuine parse of the derived text.
		var enc bytes.Buffer
		if err := lz.EncodeStream(&enc, lz.Compress(m, text)); err != nil {
			t.Fatalf("EncodeStream: %v", err)
		}
		check(t, "compressed", enc.Bytes())

		// Source 2: raw tokens decoded from the spec bytes. Each pair of
		// bytes becomes a token: literal when the produced text is empty or
		// the selector says so; otherwise a copy with source and length
		// folded into the currently valid ranges (lengths up to 4× the
		// produced prefix exercise deep self-reference).
		if len(tokenSpec) > 2048 {
			tokenSpec = tokenSpec[:2048]
		}
		var toks []lz.Token
		n := 0
		for i := 0; i+1 < len(tokenSpec) && n < 1<<16; i += 2 {
			a, b := tokenSpec[i], tokenSpec[i+1]
			if n == 0 || a%3 == 0 {
				toks = append(toks, lz.Token{Lit: 'a' + b%3})
				n++
				continue
			}
			src := int32(int(a) * 31 % n)
			l := int32(int(b)%(4*n) + 1)
			toks = append(toks, lz.Token{Src: src, Len: l})
			n += int(l)
		}
		if len(toks) == 0 {
			return
		}
		enc.Reset()
		if err := lz.EncodeStream(&enc, lz.Compressed{N: n, Tokens: toks}); err != nil {
			t.Fatalf("EncodeStream(raw): %v", err)
		}
		check(t, "raw-tokens", enc.Bytes())
	})
}
