// Package czsearch matches a prepared dictionary directly against LZ1/LZ1R1
// token streams — compressed-domain search, the missing bridge between the
// paper's two halves (§3 dictionary matching, §4/§5 LZ compression). It
// reports exactly the occurrences that decompress-then-match would, while
// feeding the automaton far fewer bytes than the stream represents.
//
// The algorithmic playbook is Gawrychowski's compressed pattern matching
// (arXiv:1104.4203, arXiv:1109.4034): occurrences internal to a copy token
// are re-used from the earlier scan of the token's source range, and only
// occurrences near token boundaries need fresh automaton work. The dense-DFA
// form of that idea is what the Scanner implements:
//
//   - The Aho–Corasick state after consuming text w is the longest suffix of
//     w that is a dictionary-trie node — a pure function of the last
//     MaxPatternLen() bytes of w. The state therefore IS the ≤ maxPatLen−1
//     bytes of trailing context the halo discipline of internal/stream
//     carries across windows; no separate boundary buffer exists.
//   - Scanning a copy token (src, len), the scanner steps the automaton byte
//     by byte and compares its state with the recorded state at the same
//     offset of the source range. The states must coincide within
//     maxPatLen−1 bytes (both positions then share their trailing context),
//     and from the first coincidence on, every later state and every later
//     occurrence of the token equals the source's, shifted — so the
//     remainder is a bulk state-history copy plus an occurrence replay, no
//     automaton transitions at all. Long copies of repetitive data cost
//     O(maxPatLen + occurrences) automaton work instead of O(len).
//   - A bounded memo cache keyed by (entry state, src, len) short-circuits
//     repeated tokens entirely: a hit replays the recorded exit state and
//     relative occurrences without touching a single byte.
//
// Correctness is pinned the repo's usual way: the equivalence suite and
// FuzzCzsearchEquivalence require byte-identical output to
// lz.Uncompress+matching across adversarial token shapes (overlapping
// self-referential copies, matches spanning ≥3 tokens, window-edge copies),
// and the serving layer cross-validates sampled requests against the
// decompress-then-match oracle.
//
// When no compiled dense automaton exists (table over budget, dense
// disabled), Fallback fuses the windowed uncompressor with the streaming
// tree-walk matcher — same output, bytes touched equal to bytes
// represented, counted as a fallback in the serving metrics.
package czsearch

import (
	"errors"
	"fmt"

	"repro/internal/stream"
)

// ErrWindowExceeded aliases the streaming uncompressor's sentinel: a copy
// token reached back beyond the retained history of a windowed scan. Both
// engines (Scanner and Fallback) surface the same value, so callers have
// one errors.Is target.
var ErrWindowExceeded = stream.ErrWindowExceeded

// ErrOutputExceeded reports a container whose represented size exceeds the
// configured MaxOutput cap — zip-bomb protection for the service endpoint.
var ErrOutputExceeded = errors.New("czsearch: represented output exceeds cap")

// Event is one dictionary match in the represented text: the longest
// pattern starting at absolute position Pos — the paper's M[i] restricted
// to positions where a pattern matches, identical to stream.MatchEvent.
type Event struct {
	Pos       int64
	PatternID int32
	Length    int32
}

// Sink receives match events in position order, each position exactly once.
// A non-nil error aborts the scan.
type Sink func(Event) error

// Default memo-cache bounds. The cache is per-run (token sources are
// absolute text offsets, meaningless across containers) and resets
// wholesale when full, so these bound memory, not correctness.
const (
	DefaultMemoMaxEntries = 1 << 14
	DefaultMemoMaxTokens  = 256 // only tokens with Len ≤ this are cached
	DefaultMemoMaxEvents  = 32  // entries with more occurrences are not cached
)

// Config controls a compressed-domain scan.
type Config struct {
	// Window is the number of trailing represented bytes retained for copy
	// tokens to reference — the same contract as stream.UncompressConfig:
	// zero retains everything; a finite window is only sound for containers
	// produced with bounded back-references, and violations surface as
	// ErrWindowExceeded.
	Window int
	// MaxOutput, if positive, aborts once the represented size would exceed
	// it.
	MaxOutput int64
	// MemoMaxEntries caps the memo cache's entry count (0 = default;
	// negative disables the cache).
	MemoMaxEntries int
}

// Stats describes one scan: how much text the stream represented, how
// little of it the automaton actually consumed, and where the savings came
// from. BytesTouched ≤ BytesRepresented always; the gap is SyncSkipped
// (copy-token bytes fast-forwarded after state coincidence) plus MemoBytes
// (bytes of memo-hit tokens never touched at all).
type Stats struct {
	Tokens           int64 `json:"tokens"`
	Literals         int64 `json:"literals"`
	Copies           int64 `json:"copies"`
	BytesRepresented int64 `json:"bytesRepresented"`
	BytesTouched     int64 `json:"bytesTouched"` // bytes fed through automaton transitions
	SyncSkipped      int64 `json:"syncSkipped"`  // copy bytes replayed via state coincidence
	MemoBytes        int64 `json:"memoBytes"`    // bytes replayed via memo hits
	MemoHits         int64 `json:"memoHits"`
	MemoMisses       int64 `json:"memoMisses"`
	Events           int64 `json:"events"`
	MaxResident      int   `json:"maxResident"` // peak retained history, bytes
}

func (s *Stats) add(o Stats) {
	s.Tokens += o.Tokens
	s.Literals += o.Literals
	s.Copies += o.Copies
	s.BytesRepresented += o.BytesRepresented
	s.BytesTouched += o.BytesTouched
	s.SyncSkipped += o.SyncSkipped
	s.MemoBytes += o.MemoBytes
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.Events += o.Events
	if o.MaxResident > s.MaxResident {
		s.MaxResident = o.MaxResident
	}
}

// tokenError wraps a token-level failure with its ordinal so a corrupt
// container points at the offending token.
func tokenError(tok int64, err error) error {
	return fmt.Errorf("czsearch: token %d: %w", tok, err)
}
