package czsearch

import (
	"context"
	"io"

	"repro/internal/stream"
)

// Fallback is the tree-walk engine for entries with no compiled dense
// automaton (table over budget, dense disabled): the windowed uncompressor
// fused to the streaming Las Vegas matcher through a pipe. Output is
// identical to the Scanner's by the halo argument of internal/stream, but
// every represented byte is materialized and matched, so BytesTouched ==
// BytesRepresented — the serving metrics count these runs as fallbacks.
type Fallback struct {
	u *stream.Uncompressor
}

// NewFallback validates the container header on r — before the caller
// commits to a response status — and returns the fused pipeline.
func NewFallback(r io.Reader, cfg Config) (*Fallback, error) {
	u, err := stream.NewUncompressor(r, stream.UncompressConfig{
		Window:    cfg.Window,
		MaxOutput: cfg.MaxOutput,
	})
	if err != nil {
		return nil, err
	}
	return &Fallback{u: u}, nil
}

// N returns the container header's represented length.
func (f *Fallback) N() int { return f.u.N() }

// Run decompresses and matches concurrently: the uncompressor feeds one end
// of a pipe, the halo-segmented matcher drains the other. Either side's
// error tears the pipe down and surfaces.
func (f *Fallback) Run(ctx context.Context, tm stream.TextMatcher, scfg stream.Config, sink Sink) (Stats, error) {
	pr, pw := io.Pipe()
	type ures struct {
		st  stream.Stats
		err error
	}
	uc := make(chan ures, 1)
	go func() {
		st, err := f.u.Run(ctx, pw)
		if err != nil {
			pw.CloseWithError(err)
		} else {
			pw.Close()
		}
		uc <- ures{st: st, err: err}
	}()
	mst, merr := stream.Match(ctx, tm, pr, fallbackSink{sink}, scfg)
	pr.CloseWithError(merr) // unblock the producer if the matcher quit first
	ur := <-uc

	stats := Stats{
		Tokens:           ur.st.Events, // uncompressor counts one event per token
		BytesRepresented: ur.st.TextBytes,
		BytesTouched:     ur.st.TextBytes,
		Events:           mst.Events,
		MaxResident:      ur.st.MaxResident,
	}
	if merr != nil {
		return stats, merr
	}
	return stats, ur.err
}

// fallbackSink adapts a czsearch Sink to the stream matcher's event type.
type fallbackSink struct{ sink Sink }

func (fs fallbackSink) MatchEvent(e stream.MatchEvent) error {
	return fs.sink(Event{Pos: e.Pos, PatternID: e.PatternID, Length: e.Length})
}
