//go:build chaos

package czsearch

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dense"
	"repro/internal/lz"
)

func withPlan(t *testing.T, seed uint64, spec string) {
	t.Helper()
	plan, err := chaos.ParsePlan(seed, spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	chaos.Install(plan)
	t.Cleanup(func() { chaos.Install(nil) })
}

// repeatedTokenContainer builds a container whose copy tokens repeat the
// same (entry state, src, len) key over and over — a memo-cache workload an
// optimal LZ1 parse would never produce, which is exactly why the chaos
// point needs it.
func repeatedTokenContainer(t *testing.T, reps int) ([]byte, *dense.Automaton) {
	t.Helper()
	aut, err := dense.Compile([][]byte{[]byte("yx"), []byte("xyxy")}, dense.Options{})
	if err != nil {
		t.Fatal(err)
	}
	toks := []lz.Token{{Lit: 'x'}, {Lit: 'y'}}
	for i := 0; i < reps; i++ {
		toks = append(toks, lz.Token{Src: 0, Len: 2})
	}
	var buf bytes.Buffer
	if err := lz.EncodeStream(&buf, lz.Compressed{N: 2 + 2*reps, Tokens: toks}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), aut
}

func scanAll(t *testing.T, aut *dense.Automaton, s *Scanner, container []byte) ([]Event, Stats, error) {
	t.Helper()
	dec, err := lz.NewDecoder(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	st, err := s.Run(context.Background(), dec, func(e Event) error {
		evs = append(evs, e)
		return nil
	})
	return evs, st, err
}

// TestChaosPoisonedMemoDiverges: a czsearch.cache fault corrupts a cached
// exit state, so later hits on that key replay from the wrong automaton
// state and the scan's output diverges from decompress-then-match. This is
// the fault class the serving layer's sampled oracle exists for (the 5xx
// path is pinned in internal/server's chaos suite); here we pin that the
// poison (a) actually changes the output and (b) does not outlive Run —
// the next Run on the same Scanner is clean, so a pooled scanner is never
// wedged by one poisoned request.
func TestChaosPoisonedMemoDiverges(t *testing.T) {
	container, aut := repeatedTokenContainer(t, 50)

	clean := NewScanner(aut, Config{})
	want, cst, err := scanAll(t, aut, clean, container)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if cst.MemoHits == 0 {
		t.Fatalf("workload produced no memo hits — the fault has nothing to poison")
	}

	// Poison every memo store. The corrupted exit state drags every
	// subsequent token through wrong states.
	withPlan(t, 5, "czsearch.cache:p=1")
	s := NewScanner(aut, Config{})
	got, _, err := scanAll(t, aut, s, container)
	if err != nil {
		t.Fatalf("poisoned run: %v", err)
	}
	same := len(got) == len(want)
	if same {
		for i := range want {
			if got[i] != want[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("poisoned memo produced oracle-identical output — the fault injected nothing")
	}

	// Disarm and rerun on the SAME scanner: Run resets the memo, so the
	// poison is gone and the output is oracle-identical again.
	chaos.Install(nil)
	got2, st2, err := scanAll(t, aut, s, container)
	if err != nil {
		t.Fatalf("post-poison run: %v", err)
	}
	if len(got2) != len(want) {
		t.Fatalf("post-poison run: %d events, want %d", len(got2), len(want))
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("post-poison run diverges at event %d: %+v vs %+v", i, got2[i], want[i])
		}
	}
	if st2.MemoHits == 0 {
		t.Fatalf("post-poison run took no memo hits — cache disabled instead of cleaned")
	}
}

// TestChaosTruncateMidToken: a czsearch.truncate fault fails the token read
// mid-stream; the scan must surface a typed injected error, never a
// silently short match set, and the scanner must be reusable afterwards.
func TestChaosTruncateMidToken(t *testing.T) {
	container, aut := repeatedTokenContainer(t, 50)
	s := NewScanner(aut, Config{})
	want, _, err := scanAll(t, aut, s, container)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	withPlan(t, 9, "czsearch.truncate:every=20")
	_, _, err = scanAll(t, aut, s, container)
	if err == nil {
		t.Fatal("truncated scan reported success")
	}
	if !chaos.IsInjected(err) {
		t.Fatalf("err = %v, want an injected fault", err)
	}

	// Disarm; the same pooled scanner serves the next request correctly.
	chaos.Install(nil)
	got, _, err := scanAll(t, aut, s, container)
	if err != nil {
		t.Fatalf("run after truncation: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("run after truncation: %d events, want %d", len(got), len(want))
	}
}
