package textgen

import (
	"bytes"
	"testing"
)

func TestReproducibility(t *testing.T) {
	a := New(42).Uniform(1000, 4)
	b := New(42).Uniform(1000, 4)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different output")
	}
	c := New(43).Uniform(1000, 4)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical output")
	}
}

func TestUniformAlphabet(t *testing.T) {
	s := New(1).Uniform(10000, 4)
	counts := map[byte]int{}
	for _, c := range s {
		counts[c]++
		if c < 'a' || c > 'd' {
			t.Fatalf("out-of-alphabet byte %q", c)
		}
	}
	for c := byte('a'); c <= 'd'; c++ {
		if counts[c] < 2000 || counts[c] > 3000 {
			t.Fatalf("letter %q count %d not near uniform", c, counts[c])
		}
	}
}

func TestDNAAlphabet(t *testing.T) {
	s := New(2).DNA(5000)
	for _, c := range s {
		if c != 'A' && c != 'C' && c != 'G' && c != 'T' {
			t.Fatalf("non-DNA byte %q", c)
		}
	}
}

func TestRepetitiveIsCompressible(t *testing.T) {
	s := New(3).Repetitive(4096, 64, 0)
	// With zero mutations the text is periodic with period 64.
	for i := 64; i < len(s); i++ {
		if s[i] != s[i-64] {
			t.Fatalf("period violated at %d", i)
		}
	}
}

func TestMarkovLengthAndAlphabet(t *testing.T) {
	s := New(4).Markov(2000, 5, 0.5)
	if len(s) != 2000 {
		t.Fatalf("len = %d", len(s))
	}
	for _, c := range s {
		if c < 'a' || c >= 'a'+5 {
			t.Fatalf("out-of-alphabet byte %q", c)
		}
	}
}

func TestFibonacciWord(t *testing.T) {
	got := Fibonacci(13)
	want := "abaababaabaab"
	if string(got) != want {
		t.Fatalf("fibonacci = %q want %q", got, want)
	}
}

func TestThueMorse(t *testing.T) {
	got := ThueMorse(16)
	want := "abbabaabbaababba"
	if string(got) != want {
		t.Fatalf("thue-morse = %q want %q", got, want)
	}
	// Cube-free: no www substring.
	s := ThueMorse(200)
	for l := 1; l <= 20; l++ {
		for i := 0; i+3*l <= len(s); i++ {
			if bytes.Equal(s[i:i+l], s[i+l:i+2*l]) && bytes.Equal(s[i:i+l], s[i+2*l:i+3*l]) {
				t.Fatalf("cube of length %d at %d", l, i)
			}
		}
	}
}

func TestPrefixClosedDictionary(t *testing.T) {
	dict := New(5).PrefixClosedDictionary(20, 8, 3)
	seen := map[string]bool{}
	for _, w := range dict {
		if len(w) == 0 {
			t.Fatal("empty word")
		}
		if seen[string(w)] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[string(w)] = true
	}
	for _, w := range dict {
		for p := 1; p < len(w); p++ {
			if !seen[string(w[:p])] {
				t.Fatalf("prefix %q of %q missing", w[:p], w)
			}
		}
	}
}

func TestPlantedDictionary(t *testing.T) {
	text, dict := New(6).PlantedDictionary(1000, 5, 8, 50, 4)
	if len(text) != 1000 || len(dict) != 5 {
		t.Fatal("sizes")
	}
	// At least one planted occurrence must be present verbatim.
	found := false
	for _, p := range dict {
		if bytes.Contains(text, p) {
			found = true
		}
	}
	if !found {
		t.Fatal("no planted pattern found in text")
	}
}

func TestGreedyAdversarial(t *testing.T) {
	text, dict := GreedyAdversarialDictionary(4, 3)
	// Text is (a^5 b)^3.
	if len(text) != 3*6 {
		t.Fatalf("text len = %d", len(text))
	}
	// Dictionary contains a..aaaa, aaab, b and is prefix closed.
	seen := map[string]bool{}
	for _, w := range dict {
		seen[string(w)] = true
	}
	for _, w := range dict {
		for p := 1; p < len(w); p++ {
			if !seen[string(w[:p])] {
				t.Fatalf("prefix property violated for %q", w)
			}
		}
	}
}
