// Package textgen generates the seeded, reproducible workloads used by the
// tests, examples and the experiment harness: texts of controlled entropy
// and repetitiveness, and pattern dictionaries with controlled structure
// (prefix-heavy, overlapping, adversarial-for-greedy). The paper motivates
// its algorithms with multi-media and genome databases (§1); the DNA and
// Markov generators stand in for those corpora.
package textgen

import (
	"math"
	"math/rand/v2"
)

// Gen is a seeded workload generator. Distinct seeds give independent
// streams; the same seed always regenerates identical data.
type Gen struct {
	rng *rand.Rand
}

// New returns a generator with the given seed.
func New(seed uint64) *Gen {
	return &Gen{rng: rand.New(rand.NewPCG(seed, 0x5bf0_3635))}
}

// Uniform returns n bytes drawn uniformly from the first sigma letters
// starting at 'a' (sigma <= 26) or from sigma byte values starting at 0.
func (g *Gen) Uniform(n, sigma int) []byte {
	out := make([]byte, n)
	base := byte('a')
	if sigma > 26 {
		base = 0
	}
	for i := range out {
		out[i] = base + byte(g.rng.IntN(sigma))
	}
	return out
}

// DNA returns n bytes over ACGT with mildly skewed frequencies (GC-content
// ~ 0.42, roughly human-like).
func (g *Gen) DNA(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		switch r := g.rng.Float64(); {
		case r < 0.29:
			out[i] = 'A'
		case r < 0.58:
			out[i] = 'T'
		case r < 0.79:
			out[i] = 'G'
		default:
			out[i] = 'C'
		}
	}
	return out
}

// Repetitive returns n bytes built from a random seed block of length
// blockLen copied with point mutations at the given rate — the highly
// compressible regime where LZ1 shines.
func (g *Gen) Repetitive(n, blockLen int, mutationRate float64) []byte {
	if blockLen <= 0 {
		blockLen = 32
	}
	block := g.Uniform(blockLen, 4)
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, block...)
	}
	out = out[:n]
	for i := range out {
		if g.rng.Float64() < mutationRate {
			out[i] = 'a' + byte(g.rng.IntN(4))
		}
	}
	return out
}

// Markov returns n bytes from an order-1 Markov chain over sigma letters
// with random (but seeded) transition structure; concentration < 1 skews
// the rows to be more deterministic, giving English-like redundancy.
func (g *Gen) Markov(n, sigma int, concentration float64) []byte {
	if sigma < 2 {
		sigma = 2
	}
	// Row-stochastic matrix from exponential weights.
	trans := make([][]float64, sigma)
	for i := range trans {
		row := make([]float64, sigma)
		var sum float64
		for j := range row {
			w := -concentration * logUniform(g.rng)
			row[j] = w
			sum += w
		}
		acc := 0.0
		for j := range row {
			acc += row[j] / sum
			row[j] = acc
		}
		trans[i] = row
	}
	out := make([]byte, n)
	state := g.rng.IntN(sigma)
	for i := range out {
		out[i] = 'a' + byte(state)
		r := g.rng.Float64()
		row := trans[state]
		state = sigma - 1
		for j, c := range row {
			if r < c {
				state = j
				break
			}
		}
	}
	return out
}

func logUniform(rng *rand.Rand) float64 {
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return -math.Log(u)
}

// Fibonacci returns the prefix of length n of the Fibonacci word over
// {a, b} — a classic highly-repetitive worst case for repetition-detecting
// structures.
func Fibonacci(n int) []byte {
	a, b := []byte("a"), []byte("ab")
	for len(b) < n {
		a, b = b, append(append([]byte{}, b...), a...)
	}
	return b[:n]
}

// ThueMorse returns the prefix of length n of the Thue–Morse word over
// {a, b} — cube-free, the opposite extreme from Fibonacci.
func ThueMorse(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if popcount(uint(i))%2 == 0 {
			out[i] = 'a'
		} else {
			out[i] = 'b'
		}
	}
	return out
}

func popcount(x uint) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// Dictionary draws numPatterns patterns with lengths in [minLen, maxLen]
// over sigma letters. Patterns are distinct with high probability but
// duplicates are allowed (the matcher must tolerate them).
func (g *Gen) Dictionary(numPatterns, minLen, maxLen, sigma int) [][]byte {
	out := make([][]byte, numPatterns)
	for i := range out {
		l := minLen
		if maxLen > minLen {
			l += g.rng.IntN(maxLen - minLen + 1)
		}
		out[i] = g.Uniform(l, sigma)
	}
	return out
}

// PrefixClosedDictionary returns a dictionary satisfying the prefix
// property required by the static compression scheme (§5): every prefix of
// every word is also a word. It draws base words and adds all their
// prefixes, deduplicated.
func (g *Gen) PrefixClosedDictionary(numBase, maxLen, sigma int) [][]byte {
	seen := map[string]bool{}
	var out [][]byte
	for i := 0; i < numBase; i++ {
		l := 1 + g.rng.IntN(maxLen)
		w := g.Uniform(l, sigma)
		for p := 1; p <= len(w); p++ {
			key := string(w[:p])
			if !seen[key] {
				seen[key] = true
				out = append(out, []byte(key))
			}
		}
	}
	return out
}

// PlantedDictionary embeds occurrences: it returns a text of length n and a
// dictionary of numPatterns patterns such that patterns are planted in the
// text every gap positions (the rest of the text is uniform noise). Used to
// control match density in experiments.
func (g *Gen) PlantedDictionary(n, numPatterns, patLen, gap, sigma int) ([]byte, [][]byte) {
	dict := g.Dictionary(numPatterns, patLen, patLen, sigma)
	text := g.Uniform(n, sigma)
	for pos := 0; pos+patLen <= n; pos += gap {
		copy(text[pos:], dict[g.rng.IntN(numPatterns)])
	}
	return text, dict
}

// GreedyAdversarialDictionary returns a prefix-closed dictionary and a text
// on which greedy longest-match parsing is suboptimal by a factor of 3/2:
// the dictionary is the prefix closure of {a^k, a^k·b} plus {b}, and the
// text is (a^(k+1)·b)^reps. In each block greedy parses a^k | a | b
// (3 phrases) while the optimal parse is a | a^k·b (2 phrases): greedy's
// longest first jump overshoots the start of the long word a^k·b.
func GreedyAdversarialDictionary(k, reps int) (text []byte, dict [][]byte) {
	for i := 1; i <= k; i++ {
		dict = append(dict, bytesRepeat('a', i))
	}
	w := append(bytesRepeat('a', k), 'b')
	// Prefix property: the proper prefixes of w are a^1..a^k, all present.
	dict = append(dict, w, []byte{'b'})
	for r := 0; r < reps; r++ {
		text = append(text, bytesRepeat('a', k+1)...)
		text = append(text, 'b')
	}
	return text, dict
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}
