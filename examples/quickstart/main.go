// Quickstart: the three algorithms of the paper on a toy input, end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/staticdict"
)

func main() {
	// A simulated CRCW PRAM; procs is the physical worker count, the
	// Work/Depth counters are the PRAM cost ledger.
	m := pram.New(0)

	// --- 1. Dictionary matching (§3, Theorem 3.1) -----------------------
	patterns := [][]byte{
		[]byte("she"), []byte("he"), []byte("hers"), []byte("his"),
	}
	dict := core.Preprocess(m, patterns, core.Options{Seed: 42})
	text := []byte("ushershe")
	matches, attempts := dict.MatchLasVegas(m, text) // checked output (§3.4)
	fmt.Printf("dictionary matching of %q (Las Vegas attempts: %d):\n", text, attempts)
	for i, mt := range matches {
		if mt.Length > 0 {
			fmt.Printf("  position %d: %q\n", i, patterns[mt.PatternID])
		}
	}

	// --- 2. LZ1 compression (§4, Theorems 4.2/4.3) ----------------------
	input := []byte("abracadabra abracadabra abracadabra")
	compressed := lz.Compress(m, input)
	fmt.Printf("\nLZ1: %d bytes -> %d phrases:\n", len(input), len(compressed.Tokens))
	for _, t := range compressed.Tokens {
		if t.IsLiteral() {
			fmt.Printf("  lit %q\n", t.Lit)
		} else {
			fmt.Printf("  copy %d bytes from offset %d\n", t.Len, t.Src)
		}
	}
	restored, err := lz.Uncompress(m, compressed, lz.ByPointerJumping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %v\n", string(restored) == string(input))

	// --- 3. Optimal static compression (§5, Theorem 5.3) ----------------
	// Prefix-closed dictionary on which greedy is suboptimal.
	words := [][]byte{[]byte("a"), []byte("aa"), []byte("aab"), []byte("b")}
	wdict := core.Preprocess(m, words, core.Options{Seed: 42})
	wtext := []byte("aaab")
	maxLen := wdict.PrefixLengths(m, wtext)
	opt, err := staticdict.OptimalParse(m, len(wtext), maxLen)
	if err != nil {
		log.Fatal(err)
	}
	greedy, _ := staticdict.GreedyParse(len(wtext), maxLen)
	fmt.Printf("\nstatic parse of %q: optimal %d phrases vs greedy %d:\n",
		wtext, len(opt), len(greedy))
	for _, p := range opt {
		fmt.Printf("  %q\n", wtext[p.Pos:p.Pos+p.Len])
	}

	work, depth := m.Counters()
	fmt.Printf("\nPRAM ledger for everything above: work=%d, depth=%d\n", work, depth)
}
