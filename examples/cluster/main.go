// Cluster: the distributed implementation the paper sketches in §1.2 —
// dictionary matching across a simulated network of workstations, plus the
// communication-complexity point about randomized string equality [29].
//
//	go run ./examples/cluster [-n 4000000] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/distrib"
	"repro/internal/textgen"
)

func main() {
	n := flag.Int("n", 4_000_000, "text length")
	workers := flag.Int("workers", 8, "workstations")
	flag.Parse()

	gen := textgen.New(555)
	text, patterns := gen.PlantedDictionary(*n, 50, 12, 1000, 4)
	var d int
	for _, p := range patterns {
		d += len(p)
	}
	fmt.Printf("text %d bytes, dictionary %d patterns (%d bytes), %d workstations\n",
		len(text), len(patterns), d, *workers)

	cluster := distrib.NewCluster(*workers)
	t0 := time.Now()
	got := cluster.Match(patterns, text, 9)
	wall := time.Since(t0)
	s := cluster.Stats()
	found := 0
	for _, m := range got {
		if m.Length > 0 {
			found++
		}
	}
	fmt.Printf("distributed match: %d occurrences in %s\n", found, wall.Round(time.Millisecond))
	fmt.Printf("network: %d messages, %d bytes (%.2fx the text size; result gather is 8 bytes/position, shard+broadcast the rest)\n",
		s.Messages, s.Bytes, float64(s.Bytes)/float64(len(text)))

	// Oracle check.
	ac := ahocorasick.New(patterns)
	want := ac.Match(text)
	for i := range want {
		wantLen := int32(0)
		if want[i] >= 0 {
			wantLen = ac.PatternLen(want[i])
		}
		if got[i].Length != wantLen {
			log.Fatalf("mismatch at %d", i)
		}
	}
	fmt.Println("Aho–Corasick cross-check passed")

	// Randomized equality (Yao [29]): two workstations comparing replicas.
	a := gen.Uniform(1_000_000, 4)
	b := append([]byte(nil), a...)
	eq, exch, det := cluster.EqualExchange(a, b, 3)
	fmt.Printf("\nremote equality of two %d-byte replicas: equal=%v with %d bytes exchanged (deterministic protocol: %d bytes)\n",
		len(a), eq, exch, det)
	b[1234] ^= 1
	eq, _, _ = cluster.EqualExchange(a, b, 3)
	fmt.Printf("after a 1-bit flip: equal=%v (fingerprints differ)\n", eq)
}
