// Genome: scan a simulated DNA sequence for a dictionary of motifs — the
// Human Genome Project workload the paper's introduction motivates (§1).
//
//	go run ./examples/genome [-n 2000000] [-motifs 200]
//
// The example plants known motifs (restriction sites, TATA-like boxes and
// random k-mers) into synthetic DNA, runs the Las Vegas matcher, and
// cross-checks counts against the Aho–Corasick baseline.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

func main() {
	n := flag.Int("n", 2_000_000, "genome length (bases)")
	motifCount := flag.Int("motifs", 200, "number of random motifs to add")
	flag.Parse()

	gen := textgen.New(20240705)
	genome := gen.DNA(*n)

	// Biological-flavoured fixed motifs plus random k-mers.
	motifs := [][]byte{
		[]byte("GAATTC"),   // EcoRI restriction site
		[]byte("GGATCC"),   // BamHI
		[]byte("AAGCTT"),   // HindIII
		[]byte("TATAAA"),   // TATA box
		[]byte("CCGCGG"),   // SacII
		[]byte("GCGGCCGC"), // NotI (8-cutter)
	}
	motifs = append(motifs, gen.Dictionary(*motifCount, 8, 14, 4)...)
	// Convert the random motifs to the DNA alphabet.
	for i := 6; i < len(motifs); i++ {
		for j, c := range motifs[i] {
			motifs[i][j] = "ACGT"[c%4]
		}
	}
	// Plant some occurrences so long motifs are actually found.
	for pos := 1000; pos+20 < len(genome); pos += 40_000 {
		copy(genome[pos:], motifs[pos/40_000%len(motifs)])
	}

	var d int
	for _, m := range motifs {
		d += len(m)
	}
	fmt.Printf("genome: %d bases; dictionary: %d motifs, %d bases total\n",
		len(genome), len(motifs), d)

	m := pram.New(0)
	t0 := time.Now()
	dict := core.Preprocess(m, motifs, core.Options{Seed: 1})
	preWall := time.Since(t0)
	preWork, preDepth := m.Counters()
	m.ResetCounters()

	t1 := time.Now()
	matches, attempts := dict.MatchLasVegas(m, genome)
	matchWall := time.Since(t1)
	matchWork, matchDepth := m.Counters()

	counts := map[string]int{}
	for i, mt := range matches {
		if mt.Length > 0 {
			counts[string(genome[i:i+int(mt.Length)])]++
		}
	}
	fmt.Printf("preprocess: %s (work %d = %.1f/base of dict, depth %d)\n",
		preWall.Round(time.Millisecond), preWork, float64(preWork)/float64(d), preDepth)
	fmt.Printf("match:      %s (work %d = %.1f/base of genome, depth %d, LV attempts %d)\n",
		matchWall.Round(time.Millisecond), matchWork, float64(matchWork)/float64(len(genome)), matchDepth, attempts)

	fmt.Println("\nnamed motif hit counts:")
	for _, mo := range motifs[:6] {
		fmt.Printf("  %-10s %6d\n", mo, counts[string(mo)])
	}

	// Cross-check against the sequential baseline.
	t2 := time.Now()
	ac := ahocorasick.New(motifs)
	acRes := ac.Match(genome)
	acWall := time.Since(t2)
	for i := range acRes {
		wantLen := int32(0)
		if acRes[i] >= 0 {
			wantLen = ac.PatternLen(acRes[i])
		}
		if matches[i].Length != wantLen {
			log.Fatalf("MISMATCH with Aho–Corasick at base %d", i)
		}
	}
	fmt.Printf("\nAho–Corasick cross-check passed in %s (sequential baseline)\n",
		acWall.Round(time.Millisecond))
}
