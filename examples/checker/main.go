// Checker: demonstrate the §3.4 Las Vegas machinery — what the output
// checker costs, and that it catches corrupted match arrays injected at
// random (standing in for the fingerprint collisions that 61-bit hashes
// make unobservably rare).
//
//	go run ./examples/checker [-n 200000] [-faults 500]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	"repro/internal/pram"
	"repro/internal/textgen"
)

func main() {
	n := flag.Int("n", 200_000, "text length")
	faults := flag.Int("faults", 500, "corruptions to inject")
	flag.Parse()

	gen := textgen.New(77)
	patterns := gen.Dictionary(64, 3, 12, 4)
	text := gen.Uniform(*n, 4)

	m := pram.New(0)
	dict := core.Preprocess(m, patterns, core.Options{Seed: 99})

	m.ResetCounters()
	t0 := time.Now()
	matches := dict.MatchText(m, text)
	matchWall := time.Since(t0)
	matchWork, _ := m.Counters()

	m.ResetCounters()
	t1 := time.Now()
	ok := dict.Check(m, text, matches)
	checkWall := time.Since(t1)
	checkWork, _ := m.Counters()

	fmt.Printf("match: %s, %d work; check: %s, %d work (%.1f%% of matching)\n",
		matchWall.Round(time.Microsecond), matchWork,
		checkWall.Round(time.Microsecond), checkWork,
		100*float64(checkWork)/float64(matchWork))
	fmt.Printf("checker verdict on honest output: %v\n\n", ok)

	rng := rand.New(rand.NewPCG(1, 2))
	injected, caught := 0, 0
	for f := 0; f < *faults; f++ {
		bad := append([]core.Match(nil), matches...)
		i := rng.IntN(len(bad))
		k := int32(rng.IntN(len(patterns)))
		if i+len(patterns[k]) <= len(text) &&
			string(text[i:i+len(patterns[k])]) == string(patterns[k]) {
			continue // the "corruption" would be a true match
		}
		bad[i] = core.Match{PatternID: k, Length: int32(len(patterns[k]))}
		injected++
		if !dict.Check(pram.New(0), text, bad) {
			caught++
		}
	}
	fmt.Printf("fault injection: %d/%d corrupted outputs rejected\n", caught, injected)
	if caught == injected {
		fmt.Println("=> every false claim detected; with honest fingerprints the Las Vegas loop terminates on attempt 1")
	}
}
