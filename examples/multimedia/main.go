// Multimedia: a compression pipeline over a simulated media-log corpus —
// the "large data bases of strings from multi-media applications" workload
// of the paper's introduction (§1).
//
//	go run ./examples/multimedia [-n 1000000]
//
// The pipeline compares, on the same corpus:
//   - LZ1 (dynamic dictionary, §4) — parallel compress + uncompress,
//   - optimal static-dictionary parsing (§5) with a dictionary trained on a
//     sample of the corpus, against the greedy heuristic,
//   - LZ2/LZ78 (§1.2's practical contrast).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/staticdict"
	"repro/internal/textgen"
)

func main() {
	n := flag.Int("n", 1_000_000, "corpus size (bytes)")
	flag.Parse()

	// Markov text emulates tag/field-structured media metadata streams.
	gen := textgen.New(424242)
	corpus := gen.Markov(*n, 16, 0.25)
	m := pram.New(0)

	fmt.Printf("corpus: %d bytes, order-1 Markov over 16 symbols\n\n", len(corpus))

	// --- LZ1 -------------------------------------------------------------
	t0 := time.Now()
	lz1 := lz.Compress(m, corpus)
	lz1Wall := time.Since(t0)
	t1 := time.Now()
	restored, err := lz.Uncompress(m, lz1, lz.ByPointerJumping)
	if err != nil {
		log.Fatal(err)
	}
	lz1Un := time.Since(t1)
	if string(restored) != string(corpus) {
		log.Fatal("LZ1 round trip failed")
	}
	fmt.Printf("LZ1 (dynamic, §4):    %8d phrases  compress %8s  uncompress %8s\n",
		len(lz1.Tokens), lz1Wall.Round(time.Millisecond), lz1Un.Round(time.Millisecond))

	// --- LZ2 -------------------------------------------------------------
	t2 := time.Now()
	lz2 := lz.CompressLZ2(corpus)
	lz2Wall := time.Since(t2)
	fmt.Printf("LZ2/LZ78 (§1.2):      %8d phrases  compress %8s  (P-complete; sequential only)\n",
		len(lz2.Tokens), lz2Wall.Round(time.Millisecond))

	// --- Static dictionary (§5) ------------------------------------------
	// Train: take the most frequent k-grams of a sample as words, closed
	// under prefixes; all single symbols included so a parse always exists.
	sample := corpus[:min(len(corpus), 64_000)]
	words := trainDictionary(sample, 8, 600)
	var dtot int
	for _, w := range words {
		dtot += len(w)
	}
	t3 := time.Now()
	dict := core.Preprocess(m, words, core.Options{Seed: 7})
	maxLen := dict.PrefixLengths(m, corpus)
	opt, err := staticdict.OptimalParse(m, len(corpus), maxLen)
	if err != nil {
		log.Fatal(err)
	}
	optWall := time.Since(t3)
	greedy, err := staticdict.GreedyParse(len(corpus), maxLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static optimal (§5):  %8d phrases  parse    %8s  (dictionary: %d words, %d bytes)\n",
		len(opt), optWall.Round(time.Millisecond), len(words), dtot)
	fmt.Printf("static greedy:        %8d phrases  (optimal saves %.2f%%)\n",
		len(greedy), 100*(1-float64(len(opt))/float64(len(greedy))))

	work, depth := m.Counters()
	fmt.Printf("\nPRAM ledger: work=%d (%.1f/byte), depth=%d\n",
		work, float64(work)/float64(len(corpus)), depth)
}

// trainDictionary returns a prefix-closed dictionary: every substring of
// the sample of length <= maxK that occurs at least minCount times, plus
// all 256 single bytes. (A real system would frequency-prune harder; this
// is enough to exercise the parser.)
func trainDictionary(sample []byte, maxK, minCount int) [][]byte {
	counts := map[string]int{}
	for k := 2; k <= maxK; k++ {
		for i := 0; i+k <= len(sample); i++ {
			counts[string(sample[i:i+k])]++
		}
	}
	seen := map[string]bool{}
	var words [][]byte
	add := func(w string) {
		for p := 1; p <= len(w); p++ {
			if !seen[w[:p]] {
				seen[w[:p]] = true
				words = append(words, []byte(w[:p]))
			}
		}
	}
	for w, c := range counts {
		if c >= minCount {
			add(w)
		}
	}
	for b := 0; b < 256; b++ {
		w := string([]byte{byte(b)})
		if !seen[w] {
			seen[w] = true
			words = append(words, []byte(w))
		}
	}
	return words
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
