package repro

// Cross-module integration tests: each one drives several packages through
// a realistic end-to-end flow and checks global invariants that no single
// package can see on its own.

import (
	"bytes"
	"testing"

	"repro/internal/ahocorasick"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/lz"
	"repro/internal/pram"
	"repro/internal/staticdict"
	"repro/internal/textgen"
)

// TestPipelineMatchThenParse drives the §3 matcher into the §5 parser: the
// text is parsed optimally against a trained prefix-closed dictionary and
// the parse is re-expanded and compared byte-for-byte.
func TestPipelineMatchThenParse(t *testing.T) {
	gen := textgen.New(3001)
	m := pram.New(0)
	text := gen.Markov(20_000, 6, 0.3)

	// Train words from the text, closed under prefixes, plus all letters.
	seen := map[string]bool{}
	var words [][]byte
	add := func(w []byte) {
		for p := 1; p <= len(w); p++ {
			if k := string(w[:p]); !seen[k] {
				seen[k] = true
				words = append(words, []byte(k))
			}
		}
	}
	for pos := 0; pos+12 < len(text); pos += 200 {
		add(text[pos : pos+12])
	}
	for c := byte('a'); c < 'a'+6; c++ {
		add([]byte{c})
	}

	dict := core.Preprocess(m, words, core.Options{Seed: 11})
	maxLen := dict.PrefixLengths(m, text)
	parse, err := staticdict.OptimalParse(m, len(text), maxLen)
	if err != nil {
		t.Fatal(err)
	}
	// Re-expand: every phrase must be a dictionary word equal to its slice.
	var rebuilt []byte
	for _, p := range parse {
		phrase := text[p.Pos : p.Pos+p.Len]
		if !seen[string(phrase)] {
			t.Fatalf("phrase %q at %d is not a dictionary word", phrase, p.Pos)
		}
		rebuilt = append(rebuilt, phrase...)
	}
	if !bytes.Equal(rebuilt, text) {
		t.Fatal("parse does not re-expand to the text")
	}
	// Optimality sanity vs greedy.
	greedy, err := staticdict.GreedyParse(len(text), maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(parse) > len(greedy) {
		t.Fatalf("optimal %d > greedy %d", len(parse), len(greedy))
	}
}

// TestPipelineCompressedSearch compresses a corpus with LZ1, uncompresses
// it, and verifies that dictionary matches survive the round trip —
// compression and search working on the same storage, the paper's §1
// scenario.
func TestPipelineCompressedSearch(t *testing.T) {
	gen := textgen.New(3002)
	m := pram.New(0)
	text, patterns := gen.PlantedDictionary(30_000, 10, 12, 500, 4)

	c := lz.Compress(m, text)
	if len(c.Tokens) >= len(text) {
		t.Fatalf("no compression achieved: %d tokens", len(c.Tokens))
	}
	restored, err := lz.Uncompress(m, c, lz.ByPointerJumping)
	if err != nil {
		t.Fatal(err)
	}
	dict := core.Preprocess(m, patterns, core.Options{Seed: 21})
	before, attemptsB := dict.MatchLasVegas(m, text)
	after, attemptsA := dict.MatchLasVegas(m, restored)
	if attemptsB != 1 || attemptsA != 1 {
		t.Fatalf("las vegas attempts %d/%d", attemptsB, attemptsA)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("matches differ at %d after compression round trip", i)
		}
	}
}

// TestPipelineDistributedEqualsLocal runs the simulated cluster against
// the local matcher and the Aho–Corasick oracle simultaneously.
func TestPipelineDistributedEqualsLocal(t *testing.T) {
	gen := textgen.New(3003)
	patterns := gen.Dictionary(20, 2, 10, 4)
	text := gen.Uniform(5_000, 4)

	cluster := distrib.NewCluster(5)
	got := cluster.Match(patterns, text, 7)

	ac := ahocorasick.New(patterns)
	want := ac.Match(text)
	for i := range text {
		wantLen := int32(0)
		if want[i] >= 0 {
			wantLen = ac.PatternLen(want[i])
		}
		if got[i].Length != wantLen {
			t.Fatalf("pos %d: cluster %d vs oracle %d", i, got[i].Length, wantLen)
		}
	}
	if s := cluster.Stats(); s.Messages == 0 {
		t.Fatal("no cluster traffic recorded")
	}
}

// TestPipelineAllThreeVariantsOfLZAgree cross-checks the token parse, the
// triple parse and LZ78 as decompressors of the same content.
func TestPipelineAllThreeVariantsOfLZAgree(t *testing.T) {
	gen := textgen.New(3004)
	m := pram.New(0)
	for _, text := range [][]byte{
		gen.Repetitive(10_000, 80, 0.02),
		gen.DNA(8_000),
		textgen.Fibonacci(5_000),
	} {
		tok := lz.Compress(m, text)
		a, err := lz.Uncompress(m, tok, lz.ByPointerJumping)
		if err != nil {
			t.Fatal(err)
		}
		tri := lz.CompressTriples(m, text)
		b, err := lz.UncompressTriples(m, tri, lz.ByConnectedComponents)
		if err != nil {
			t.Fatal(err)
		}
		c := lz.DecodeLZ2(lz.CompressLZ2(text))
		if !bytes.Equal(a, text) || !bytes.Equal(b, text) || !bytes.Equal(c, text) {
			t.Fatal("variant disagreement")
		}
	}
}

// TestWorkLedgerConsistency: the PRAM ledger must be identical for the
// same computation regardless of physical worker count — determinism of
// the cost model itself.
func TestWorkLedgerConsistency(t *testing.T) {
	gen := textgen.New(3005)
	patterns := gen.Dictionary(16, 2, 8, 4)
	text := gen.Uniform(4_000, 4)
	type ledger struct{ w, d int64 }
	run := func(procs int) ledger {
		m := pram.New(procs)
		dict := core.Preprocess(m, patterns, core.Options{Seed: 3})
		dict.MatchText(m, text)
		w, d := m.Counters()
		return ledger{w, d}
	}
	// procs == 1 deliberately selects the sequential algorithm variants
	// (different, linear-work ledger); among parallel machines the ledger
	// must not depend on the physical worker count.
	a, b, c := run(2), run(3), run(8)
	if a != b || b != c {
		t.Fatalf("ledger depends on worker count: %v %v %v", a, b, c)
	}
	if s := run(1); s == a {
		t.Log("note: sequential ledger coincidentally equals parallel ledger")
	}
}
